/**
 * @file
 * ServiceServer: a multi-chip region behind an epoll network
 * front-end.
 *
 * Threading model (strict ownership, no shared mutable simulator
 * state):
 *
 *  - N `ioThreads` own the sockets, partitioned by connection id
 *    (owner = id % N). Each runs a level-triggered epoll(7) loop:
 *    thread 0 additionally owns the listeners and hands accepted
 *    connections to their owners through per-thread mailboxes
 *    (mutex + eventfd wake). An IO thread does all reads, frame
 *    decoding, parsing, routing, and writes for its connections;
 *    protocol errors and backpressure (`queue_full`) are answered
 *    in place, so a flooding client cannot wedge a simulator.
 *
 *  - `shards` simulation threads each own one CloudProvider (shard
 *    s seeded with params.seed + s) behind a ServiceCore and a
 *    BoundedQueue. Single-shard requests are routed to the owning
 *    shard's queue (arrivals via the PlacementRouter, tenant ops by
 *    the shard byte of the tenant id). Region-wide ops fan out one
 *    part per shard; the last shard to finish merges the partials
 *    (service/region.hh) and publishes the response. Cross-shard
 *    migration is a sim-to-sim hand-off: the source serializes the
 *    tenant (migrateOut → JSON) and pushes a capacity-exempt task
 *    to the target's queue, which replays it (migrateIn) and
 *    responds. Rebalance triggers run on each sim thread after
 *    every batch against a shared load board, planning only
 *    *out-migrations* from that thread's own shard.
 *
 * Determinism: each shard's state is a pure function of its applied
 * request sequence. One shard and one client reproduce the PR-5
 * daemon bit-for-bit; more shards only partition the sequence.
 *
 * Shutdown (stop(), the SIGTERM path) is a fleet-wide audited
 * drain: stop accepting and reading everywhere, wait for the IO
 * threads to quiesce, half-close the queues (closeExternal), wait
 * for in-flight tasks — migration chains included — to drain,
 * close the queues, let every sim thread drain its provider (final
 * bills + conservation audit), aggregate the per-shard reports into
 * one region report, then flush every outbox and exit.
 */

#ifndef CASH_SERVICE_SERVER_HH
#define CASH_SERVICE_SERVER_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cloud/placement.hh"
#include "service/core.hh"
#include "service/protocol.hh"
#include "service/queue.hh"
#include "service/region.hh"

namespace cash::service
{

/** Server tunables. */
struct ServerConfig
{
    /** Unix-domain listener path ("" = no Unix listener). A stale
     *  socket file at the path is unlinked first. */
    std::string unixPath;
    /** Listen on TCP (loopback). Port 0 picks an ephemeral port
     *  (see ServiceServer::tcpPort()). */
    bool listenTcp = false;
    std::uint16_t tcpPort = 0;
    /** Per-shard request-queue bound: beyond this the front-end
     *  answers `queue_full`. */
    std::size_t queueCapacity = 256;
    /** Simulation-thread batch bound per queue drain. */
    std::size_t maxBatch = 64;
    /** Per-frame payload cap, bytes. */
    std::size_t maxFrame = kDefaultMaxFrame;
    /** Close connections silent for this long (0 = never). */
    int idleTimeoutMs = 0;
    /** Requests older than this at apply time are answered
     *  `deadline_exceeded` instead of applied (0 = no deadline). */
    int requestDeadlineMs = 0;
    /** auditProvider() after every request and stepped quantum. */
    bool audit = false;
    /** Region size: one provider + sim thread each, 1..256. */
    std::uint32_t shards = 1;
    /** Socket-owning event-loop threads. */
    std::uint32_t ioThreads = 1;
    /** Arrival placement policy across the shards. */
    cloud::PlacementPolicy placement =
        cloud::PlacementPolicy::BinPack;
    /** Migration-trigger tunables (ignored with one shard). */
    cloud::RebalanceParams rebalance;
};

/** Front-end accounting (atomics: many writer threads). */
struct ServerStats
{
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> closed{0};
    std::atomic<std::uint64_t> idleClosed{0};
    std::atomic<std::uint64_t> requests{0};
    std::atomic<std::uint64_t> responses{0};
    std::atomic<std::uint64_t> queueFull{0};
    std::atomic<std::uint64_t> deadlineExceeded{0};
    std::atomic<std::uint64_t> protocolErrors{0};
    std::atomic<std::uint64_t> batches{0};
    /** Completed cross-shard migrations (explicit + triggered). */
    std::atomic<std::uint64_t> migrations{0};
    /** Migrations initiated by the rebalance triggers. */
    std::atomic<std::uint64_t> rebalances{0};
};

class ServiceServer
{
  public:
    /** Builds the region: shard s runs a CloudProvider seeded with
     *  params.seed + s. The server owns its providers. */
    ServiceServer(const cloud::ProviderParams &params,
                  const ServerConfig &config);
    ~ServiceServer();

    ServiceServer(const ServiceServer &) = delete;
    ServiceServer &operator=(const ServiceServer &) = delete;

    /** Bind listeners and start the IO and simulation threads.
     *  fatal() on bind/listen failure. */
    void start();

    /**
     * Fleet-wide graceful drain, callable once from any thread
     * (the daemon calls it after SIGTERM); see the file comment
     * for the full sequence.
     */
    void stop();

    /** Wake the event loops for shutdown from a signal handler
     *  (async-signal-safe; the actual stop() still must be called
     *  from a normal thread). */
    void wakeFromSignal();

    /** The bound TCP port (after start(); 0 if TCP is off). */
    std::uint16_t tcpPort() const { return boundTcpPort_; }

    const ServerStats &stats() const { return stats_; }

    /** The aggregated region drain report captured by stop()
     *  ({"bills":...,"revenue":...,"departed":...}); null object
     *  before stop() completes. */
    const JsonValue &finalReport() const { return finalReport_; }

    const ServerConfig &config() const { return config_; }

    std::uint32_t shardCount() const
    {
        return static_cast<std::uint32_t>(shards_.size());
    }

    /** Shard s's provider (stable address; read-safe only when its
     *  sim thread is quiesced, e.g. after stop()). */
    const cloud::CloudProvider &provider(std::uint32_t shard) const
    {
        return *shards_[shard].provider;
    }

  private:
    using Clock = std::chrono::steady_clock;

    struct Connection
    {
        int fd = -1;
        std::uint64_t id = 0;
        FrameDecoder decoder;
        std::string outbox;     ///< framed bytes awaiting write
        std::size_t outOff = 0; ///< written prefix of outbox
        Clock::time_point lastActivity;
        /** Requests enqueued to sim threads whose responses have
         *  not yet been collected into the outbox. A half-closed
         *  connection stays open until this reaches zero, so the
         *  "flush pending responses, then close" contract holds. */
        std::uint64_t inFlight = 0;
        bool readClosed = false;
        bool closeAfterFlush = false;
        /** Interest mask currently registered with epoll. */
        std::uint32_t epollMask = 0;
        bool registered = false;

        explicit Connection(std::size_t max_frame)
            : decoder(max_frame)
        {}
    };

    /** Shared state of one fanned-out region op. The last sim
     *  thread to decrement `remaining` merges and responds. */
    struct Fanout
    {
        std::uint64_t connId = 0;
        std::uint64_t reqId = 0;
        Op op = Op::Snapshot;
        std::atomic<std::uint32_t> remaining{0};
        /** First failure (errors::* constant), if any. */
        std::atomic<const char *> failCode{nullptr};
        /** One slot per shard; each sim thread writes only its
         *  own (publication order via `remaining`). */
        std::vector<JsonValue> parts;
    };

    struct SimTask
    {
        enum class Kind : std::uint8_t
        {
            Single,    ///< one-shard request, direct response
            FanPart,   ///< this shard's part of a region op
            MigrateIn, ///< replay a serialized tenant here
        };
        Kind kind = Kind::Single;
        std::uint64_t connId = 0; ///< 0 = internal (no response)
        Request request;
        Clock::time_point enqueued;
        std::shared_ptr<Fanout> fanout;
        /** MigrateIn: the snapshot JSON text and provenance. */
        std::string snapshotJson;
        std::uint32_t fromShard = 0;
        std::uint64_t stallCycles = 0;
    };

    struct Outgoing
    {
        std::uint64_t connId = 0;
        std::string framed;
    };

    /** One simulation shard. */
    struct Shard
    {
        std::unique_ptr<cloud::CloudProvider> provider;
        std::unique_ptr<ServiceCore> core;
        std::unique_ptr<BoundedQueue<SimTask>> queue;
        std::thread thread;
        /** This shard's drain report, written by its sim thread
         *  after the queue closes. */
        JsonValue drainPartial;
    };

    /** One socket-owning event-loop thread. */
    struct IoThread
    {
        int epollFd = -1;
        int wakeFd = -1; ///< eventfd
        std::thread thread;
        std::mutex mailboxMutex;
        /** Connections accepted by thread 0, awaiting adoption. */
        std::vector<std::unique_ptr<Connection>> pendingConns;
        /** Responses published by sim threads. */
        std::vector<Outgoing> outgoing;
        /** Owner-thread-only state. */
        std::map<std::uint64_t, std::unique_ptr<Connection>> conns;
    };

    void ioLoop(std::uint32_t ti);
    void simLoop(std::uint32_t shard);

    void acceptPending(int listen_fd);
    bool serviceRead(IoThread &io, Connection &conn);
    void handleFrame(IoThread &io, Connection &conn,
                     const std::string &payload);
    void routeRequest(IoThread &io, Connection &conn,
                      const Request &req);
    void enqueueSingle(IoThread &io, Connection &conn,
                       const Request &req, std::uint32_t shard);
    void enqueueFanout(IoThread &io, Connection &conn,
                       const Request &req);
    void respondNow(Connection &conn, const JsonValue &resp);
    bool serviceWrite(Connection &conn);
    void closeConnection(IoThread &io, std::uint64_t conn_id);
    void collectMailbox(IoThread &io);
    void updateInterest(IoThread &io, Connection &conn);

    /** Merge (or fail) a completed fanout into its response. */
    JsonValue finalizeFanout(Fanout &fanout);

    /** Hand a framed response to the owner IO thread. */
    void publish(std::uint64_t conn_id, std::string framed);

    /** Sim-thread handlers. */
    void simHandleTask(std::uint32_t shard, SimTask &task,
                       Clock::time_point now);
    void simHandleMigrateSource(std::uint32_t shard, SimTask &task);
    void simHandleMigrateIn(std::uint32_t shard, SimTask &task);
    /** Publish the shard's load and run the rebalance triggers. */
    void simAfterBatch(std::uint32_t shard);

    std::vector<cloud::ShardLoad> copyLoads();
    void wake(std::uint32_t ti);
    void wakeAll();

    ServerConfig config_;
    std::vector<Shard> shards_;
    std::vector<std::unique_ptr<IoThread>> ioThreads_;
    cloud::PlacementRouter router_;
    std::mutex routerMutex_; ///< guards router_ (stats + cooldowns)

    /** Entry (admission-minimum) config per catalog class, for
     *  routing arrivals without touching a provider. */
    std::vector<VCoreConfig> entryCfgs_;

    /** Load board: shard s's occupancy as last published by its
     *  sim thread. */
    std::mutex loadMutex_;
    std::vector<cloud::ShardLoad> loadBoard_;

    std::vector<int> listenFds_;
    std::uint16_t boundTcpPort_ = 0;

    std::atomic<std::uint64_t> nextConnId_{1};
    /** Tasks enqueued (external + internal) and not yet fully
     *  processed; stop() waits for 0 before closing the queues so
     *  migration chains complete. */
    std::atomic<std::int64_t> pendingTasks_{0};
    std::atomic<std::uint32_t> ioQuiesced_{0};

    std::atomic<bool> started_{false};
    std::atomic<bool> stopRequested_{false};
    std::atomic<bool> simDone_{false};
    std::atomic<bool> stopped_{false};
    std::mutex stopMutex_; ///< serializes stop() callers

    ServerStats stats_;
    JsonValue finalReport_;
};

} // namespace cash::service

#endif // CASH_SERVICE_SERVER_HH
