/**
 * @file
 * Shared setup for the experiment benches.
 *
 * Every bench regenerates one of the paper's tables or figures and
 * prints (a) the measured data and (b) the paper's reference values
 * next to it where the paper states them. Benches declare their
 * evaluation cells against harness::ExperimentEngine, which runs
 * them in parallel and hands results back in declaration order, so
 * stdout/CSV output is byte-identical at any thread count. Scale
 * and execution knobs:
 *
 *   CASH_BENCH_FAST=1    shrink horizons ~4x for a quick smoke run
 *   CASH_BENCH_CSV=dir   also emit machine-readable CSV into `dir`
 *   CASH_BENCH_THREADS=n worker threads (default: hardware
 *                        concurrency); results do not depend on n
 *
 * and command-line flags (see TraceOptions):
 *
 *   --trace <file>       record a Chrome trace_event JSON timeline
 *   --metrics <file>     write the metric summary as CSV
 */

#ifndef CASH_BENCH_BENCH_UTIL_HH
#define CASH_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <string_view>

#include "baselines/experiment.hh"
#include "common/csv.hh"
#include "common/log.hh"
#include "harness/eval_grid.hh"
#include "harness/experiment_engine.hh"
#include "trace/export.hh"
#include "trace/metrics.hh"
#include "trace/options.hh"
#include "trace/trace.hh"

namespace cash::bench
{

inline bool
fastMode()
{
    const char *v = std::getenv("CASH_BENCH_FAST");
    return v && v[0] == '1';
}

/** Process-wide sampled-simulation switch, set by the --sampled
 *  flag (TraceOptions below) before any params are built. */
inline bool &
sampledMode()
{
    static bool sampled = false;
    return sampled;
}

/** Experiment parameters at bench scale. */
inline ExperimentParams
benchParams(bool request_app = false)
{
    ExperimentParams ep;
    ep.quantum = 2'000'000;
    ep.phaseScale = 20.0;
    ep.horizon = request_app ? 360'000'000 : 150'000'000;
    if (fastMode())
        ep.horizon /= 4;
    if (sampledMode())
        ep.simMode = SimMode::Sampled;
    return ep;
}

/** Longer-horizon parameters for the time-series figures (Figs
 *  2/8): one full lap of x264's ten phases is ~250 Mcycles at the
 *  bench phase scale. */
inline ExperimentParams
seriesParams()
{
    ExperimentParams ep = benchParams();
    ep.horizon = 320'000'000;
    if (fastMode())
        ep.horizon = 80'000'000;
    return ep;
}

/** Characterization effort at bench scale. */
inline ProfileParams
benchProfile()
{
    ProfileParams pp;
    pp.warmupInsts = fastMode() ? 15'000 : 30'000;
    pp.measureInsts = fastMode() ? 30'000 : 60'000;
    pp.requestWindow = fastMode() ? 1'500'000 : 3'000'000;
    return pp;
}

/**
 * Emit the bench's engine summary ({cells, per-cell wall clock,
 * thread count}) as <name>_engine.json next to the CSV output, and
 * report the wall clock to stderr (never stdout: stdout stays
 * byte-identical across thread counts).
 */
inline void
finishBench(harness::ExperimentEngine &engine,
            const std::string &name)
{
    engine.writeJsonSummary(name);
    inform("%s: %zu cells on %zu threads, %.0f ms engine wall "
           "clock",
           name.c_str(), engine.report().cells.size(),
           engine.threads(), engine.report().wallMillis);
}

/**
 * Command-line tracing for the bench binaries:
 *
 *   bench_x --trace out.json [--metrics out.csv]
 *
 * A thin wrapper over the shared trace::TraceOptions
 * (trace/options.hh), which implements the flags, the session
 * lifetime, and the exports. The bench layer adds --sampled
 * (sampled simulation, see sim/sampler.hh; results then carry the
 * error-gate bound) and exactly one policy: benches take no other
 * arguments, so anything left in argv after extraction earns a
 * warning rather than being passed on.
 */
class TraceOptions
{
  public:
    TraceOptions(int argc, char **argv) : opts_(argc, argv)
    {
        // opts_ compacted argv in place; argc now counts
        // leftovers. Extract --sampled the same way before the
        // unknown-argument warning pass.
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            if (std::string_view(argv[i]) == "--sampled") {
                sampledMode() = true;
                continue;
            }
            argv[out++] = argv[i];
        }
        argc = out;
        for (int i = 1; i < argc; ++i)
            warn("unknown argument '%s' ignored (supported: "
                 "--trace <file>, --metrics <file>, --sampled)",
                 argv[i]);
    }

    TraceOptions(const TraceOptions &) = delete;
    TraceOptions &operator=(const TraceOptions &) = delete;

    /** True when a session was installed for this run. */
    bool enabled() const { return opts_.enabled(); }

  private:
    trace::TraceOptions opts_;
};

/** Open a CSV file when CASH_BENCH_CSV is set. */
class CsvSink
{
  public:
    CsvSink(const std::string &name,
            std::vector<std::string> header)
    {
        const char *dir = std::getenv("CASH_BENCH_CSV");
        if (!dir)
            return;
        std::string path = std::string(dir) + "/" + name + ".csv";
        file_.open(path);
        if (file_.is_open()) {
            writer_.emplace(file_, std::move(header));
        } else {
            // A missing directory (or unwritable file) used to
            // drop every row silently; say so once instead.
            warn("CASH_BENCH_CSV: cannot open '%s'; CSV output "
                 "for this bench is disabled (does the directory "
                 "exist?)",
                 path.c_str());
        }
    }

    void
    row(const std::vector<std::string> &cells)
    {
        if (writer_)
            writer_->row(cells);
    }

  private:
    std::ofstream file_;
    std::optional<CsvWriter> writer_;
};

} // namespace cash::bench

#endif // CASH_BENCH_BENCH_UTIL_HH
