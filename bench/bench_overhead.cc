/**
 * @file
 * Paper Sec VI-A: architectural and runtime reconfiguration
 * overheads, plus the Table I / Table II input parameters.
 *
 * Architectural overheads are measured directly from SSim's
 * reconfiguration engine: Slice expansion (pipeline flush), Slice
 * contraction (+ register flush, bounded by the global register
 * count), and L2 flush cycles as a function of dirty state (the
 * paper's worst case: a fully dirty 64 KB bank over a 64-bit
 * network, which it quotes as ~8000 cycles). Each deterministic
 * measurement is one engine cell; only the wall-clock decision
 * micro (inherently nondeterministic) runs inline, after the
 * cells have drained.
 *
 * Runtime overhead is reported two ways: wall-clock nanoseconds per
 * CashRuntime decision (the O(1) claim), and modeled cycles for
 * Algorithm 1's operation mix executed on 1/2/3-Slice virtual cores
 * (the paper measures ~2000 / 1100 / 977 cycles).
 */

#include <chrono>
#include <cstdio>

#include "bench_util.hh"
#include "core/runtime.hh"
#include "sim/reconfig.hh"
#include "workload/trace_gen.hh"

using namespace cash;

namespace
{

void
printInputTables()
{
    SliceParams s;
    CacheParams c;
    std::printf("=== Table I: base Slice configuration ===\n");
    std::printf("functional units/Slice   %u\n", s.functionalUnits);
    std::printf("physical registers       %u\n", s.physRegs);
    std::printf("local registers/Slice    %u\n", s.localRegs);
    std::printf("issue window             %u\n", s.issueWindow);
    std::printf("load/store queue         %u\n", s.lsqSize);
    std::printf("ROB size                 %u\n", s.robSize);
    std::printf("store buffer             %u\n", s.storeBuffer);
    std::printf("max in-flight loads      %u\n",
                s.maxInflightLoads);
    std::printf("memory delay             %u\n\n", c.memLat);
    std::printf("=== Table II: base cache configuration ===\n");
    std::printf("L1D %lluKB/%uB/%u-way, hit %u\n",
                static_cast<unsigned long long>(c.l1dSize / 1024),
                c.blockSize, c.l1Assoc, c.l1HitLat);
    std::printf("L1I %lluKB/%uB/%u-way, hit %u\n",
                static_cast<unsigned long long>(c.l1iSize / 1024),
                c.blockSize, c.l1Assoc, c.l1HitLat);
    std::printf("L2 %lluKB banks/%uB/%u-way, hit = dist*%u + %u\n\n",
                static_cast<unsigned long long>(c.l2BankSize / 1024),
                c.blockSize, c.l2Assoc, c.l2DistFactor,
                c.l2BaseLat);
}

PhaseParams
runtimeKernelPhase()
{
    // Algorithm 1's body compiled down: table scans (sequential
    // loads, highly cacheable), scalar arithmetic, a few branches.
    PhaseParams p;
    p.name = "algorithm1";
    p.ilpMeanDist = 6;
    p.memFrac = 0.35;
    p.storeFrac = 0.25;
    p.fpFrac = 0.30;
    p.branchFrac = 0.12;
    p.branchBias = 0.95;
    p.workingSet = 8 * kiB; // K=64 table of a few doubles each
    p.seqFrac = 0.8;
    p.codeFootprint = 4 * kiB;
    p.lengthInsts = 1'000'000;
    return p;
}

/** Slice expand + contract on one warmed simulator (one cell: the
 *  two commands share simulator state by design). */
struct SliceCosts
{
    ReconfigCost expand;
    ReconfigCost shrink;
};

SliceCosts
measureSliceCosts()
{
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    PhaseParams p = runtimeKernelPhase();
    p.workingSet = 64 * kiB;
    PhasedTraceSource src({p}, 5, true, 0);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(50'000);
    SliceCosts costs;
    costs.expand = *sim.command(id, 2, 1);
    sim.vcore(id).runUntil(150'000);
    costs.shrink = *sim.command(id, 1, 1);
    return costs;
}

/** L2 flush cost after dirtying cache state at one store ratio. */
ReconfigCost
measureL2Flush(double store_frac)
{
    SSim sim;
    auto id = *sim.createVCore(1, 8);
    PhaseParams p = runtimeKernelPhase();
    p.memFrac = 0.5;
    p.storeFrac = store_frac;
    p.workingSet = 512 * kiB;
    p.seqFrac = 0.0;
    PhasedTraceSource src({p}, 5, true, 0);
    sim.vcore(id).bindSource(&src);
    sim.vcore(id).runUntil(800'000);
    return *sim.command(id, 1, 1);
}

/** Modeled cycles per Algorithm-1 iteration on `slices` Slices. */
Cycle
measureIterationCycles(std::uint32_t slices)
{
    const InstCount algo_insts = 1800;
    SSim sim;
    auto id = *sim.createVCore(slices, 1);
    PhasedTraceSource warm({runtimeKernelPhase()}, 5, true, 0);
    CappedSource warm_cap(warm, 20'000);
    sim.vcore(id).bindSource(&warm_cap);
    sim.vcore(id).runUntil(~Cycle(0) / 2);
    Cycle c0 = sim.vcore(id).now();
    PhasedTraceSource body({runtimeKernelPhase()}, 6, true, 0);
    CappedSource cap(body, algo_insts * 100);
    sim.vcore(id).bindSource(&cap);
    sim.vcore(id).runUntil(~Cycle(0) / 2);
    return (sim.vcore(id).now() - c0) / 100;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::TraceOptions trace_opts(argc, argv);
    const double store_fracs[] = {0.1, 0.4, 0.8};
    const std::uint32_t slice_counts[] = {1, 2, 3};

    // Fan the deterministic measurements out as engine cells.
    harness::ExperimentEngine engine;
    SliceCosts slice_costs;
    std::vector<ReconfigCost> l2_costs(3);
    std::vector<Cycle> iter_cycles(3);
    {
        std::vector<harness::Cell> cells;
        cells.push_back({{"overhead", "slice-commands", 0, 5},
                         [&] { slice_costs = measureSliceCosts(); }});
        for (std::size_t i = 0; i < 3; ++i) {
            cells.push_back(
                {{"overhead", "l2-flush", i, 5}, [&, i] {
                     l2_costs[i] = measureL2Flush(store_fracs[i]);
                 }});
            cells.push_back(
                {{"overhead", "iteration", i, 5}, [&, i] {
                     iter_cycles[i] =
                         measureIterationCycles(slice_counts[i]);
                 }});
        }
        engine.run(std::move(cells));
    }

    printInputTables();

    // ---------------- Architectural overheads ----------------
    std::printf("=== Sec VI-A: architectural reconfiguration "
                "overheads ===\n");
    bench::CsvSink csv("overhead",
                       {"operation", "cycles", "detail"});
    {
        const ReconfigCost &expand = slice_costs.expand;
        std::printf("Slice expansion: pipeline flush %llu "
                    "(paper: ~15), command delivery %llu, "
                    "LS-repartition L1 flush %llu "
                    "(this model's addition), total %llu\n",
                    static_cast<unsigned long long>(
                        expand.pipelineFlush),
                    static_cast<unsigned long long>(
                        expand.commandLatency),
                    static_cast<unsigned long long>(
                        expand.l1FlushCycles),
                    static_cast<unsigned long long>(
                        expand.totalStall()));
        csv.row({"slice_expand",
                 std::to_string(expand.totalStall()), "1->2"});

        const ReconfigCost &shrink = slice_costs.shrink;
        std::printf("Slice contraction: register flush %llu "
                    "cycles for %u registers (paper: at most 64 "
                    "cycles), pipeline flush %llu, LS-repartition "
                    "L1 flush %llu, total %llu\n",
                    static_cast<unsigned long long>(
                        shrink.regFlushCycles),
                    shrink.regsFlushed,
                    static_cast<unsigned long long>(
                        shrink.pipelineFlush),
                    static_cast<unsigned long long>(
                        shrink.l1FlushCycles),
                    static_cast<unsigned long long>(
                        shrink.totalStall()));
        csv.row({"slice_contract",
                 std::to_string(shrink.totalStall()),
                 std::to_string(shrink.regsFlushed) + " regs"});
    }

    // L2 flush cost as a function of dirtiness.
    std::printf("\nL2 contraction flush (8 banks -> 1):\n");
    std::printf("%-14s %14s %14s\n", "store frac", "dirty lines",
                "flush cycles");
    for (std::size_t i = 0; i < 3; ++i) {
        const ReconfigCost &cost = l2_costs[i];
        std::printf("%-14.1f %14llu %14llu\n", store_fracs[i],
                    static_cast<unsigned long long>(
                        cost.l2DirtyFlushed),
                    static_cast<unsigned long long>(
                        cost.l2FlushCycles));
        csv.row({"l2_flush", std::to_string(cost.l2FlushCycles),
                 CsvWriter::num(store_fracs[i], 2)});
    }
    std::printf("worst case: one fully dirty 64KB bank = "
                "65536B / 8B = 8192 cycles (paper rounds to "
                "8000)\n\n");

    // ---------------- Runtime overhead ----------------
    std::printf("=== Sec VI-A: runtime overhead ===\n");
    {
        // Wall-clock cost of one decision (the O(1) claim): run
        // Algorithm 1 against a chip and time only the decision
        // maths by measuring many steps of a tiny quantum. This is
        // host timing, so it stays inline, after the engine's
        // cells have drained.
        ConfigSpace space;
        CostModel cost;
        SSim sim;
        auto id = *sim.createVCore(1, 1);
        PhasedTraceSource inner({runtimeKernelPhase()}, 5, true, 0);
        PacedSource paced(inner, 0.3);
        sim.vcore(id).bindSource(&paced);
        RuntimeParams rp;
        rp.quantum = 50'000;
        CashRuntime rt(sim, id, QosKind::Throughput, 0.3, space,
                       cost, rp, 7);
        const int iters = 1000;
        auto t0 = std::chrono::steady_clock::now();
        for (int i = 0; i < iters; ++i)
            rt.step();
        auto t1 = std::chrono::steady_clock::now();
        double ns = std::chrono::duration<double, std::nano>(
                        t1 - t0)
                        .count()
            / iters;
        std::printf("host wall clock per quantum (decision + "
                    "simulation of the quantum): %.0f ns\n", ns);
    }
    {
        // Modeled cycles: Algorithm 1's instruction mix (~1800
        // dynamic instructions per iteration for K=64) on 1/2/3
        // Slice virtual cores.
        std::printf("modeled cycles per runtime iteration "
                    "(paper: 2000 / 1100 / 977):\n");
        for (std::size_t i = 0; i < 3; ++i) {
            std::printf("  %u Slice%s: %llu cycles\n",
                        slice_counts[i],
                        slice_counts[i] > 1 ? "s" : " ",
                        static_cast<unsigned long long>(
                            iter_cycles[i]));
            csv.row({"runtime_iteration",
                     std::to_string(iter_cycles[i]),
                     std::to_string(slice_counts[i]) + " slices"});
        }
    }
    bench::finishBench(engine, "overhead");
    return 0;
}
