/**
 * @file
 * Paper Fig 1 (a-k): x264's per-phase performance over every virtual
 * core built from 1..8 Slices and 64 KB..8 MB of L2.
 *
 * All (phase, configuration) sweep points are independent cells run
 * in parallel by the experiment engine; the tables are formatted
 * from the collected results. Prints one IPC table per phase (the
 * data behind each contour plot), marks the global optimum (*) and
 * strict local optima (+), and ends with the Fig 1k phase-breakdown
 * summary. The paper's headline properties are checked: at least
 * six of ten phases have local optima distinct from the global one,
 * and no two consecutive phases share an optimal configuration.
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "baselines/profile.hh"
#include "bench_util.hh"
#include "core/config_space.hh"
#include "workload/apps.hh"

using namespace cash;

namespace
{

bool
isLocalOptimum(const ConfigSpace &space,
               const std::vector<double> &perf, std::size_t k,
               std::size_t global)
{
    if (k == global || perf[k] >= perf[global] * 0.95)
        return false;
    for (std::size_t n : space.neighbours(k)) {
        if (perf[n] > perf[k] * 1.02)
            return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    bench::TraceOptions trace_opts(argc, argv);
    ConfigSpace space; // 8 slices x 8 cache steps = 64 configs
    const AppModel &x264 = appByName("x264");
    ProfileParams pp = bench::benchProfile();

    // One cell per (phase, configuration) point.
    harness::ExperimentEngine engine;
    const std::size_t nk = space.size();
    const std::size_t nph = x264.phases.size();
    std::vector<double> flat = engine.map<double>(
        nph * nk,
        [&](std::size_t i) {
            std::size_t ph = i / nk, k = i % nk;
            return measurePhaseIpc(x264.phases[ph], space.at(k),
                                   FabricParams{}, SimParams{},
                                   pp.warmupInsts, pp.measureInsts,
                                   77 + ph);
        },
        [&](std::size_t i) {
            return harness::CellKey{
                "x264", "phase:" + x264.phases[i / nk].name,
                i % nk, 77 + i / nk};
        });

    std::printf("=== Fig 1: phases of x264 on the CASH "
                "architecture ===\n");
    std::printf("IPC per (Slices, L2) configuration; "
                "* = phase optimum, + = local optimum\n\n");

    bench::CsvSink csv("fig1_phases",
                       {"phase", "slices", "banks", "ipc"});

    std::vector<std::size_t> best_of_phase;
    std::vector<int> locals_per_phase;

    for (std::size_t ph = 0; ph < nph; ++ph) {
        const PhaseParams &phase = x264.phases[ph];
        std::vector<double> perf(flat.begin() + ph * nk,
                                 flat.begin() + (ph + 1) * nk);
        for (std::size_t k = 0; k < nk; ++k) {
            csv.row({std::to_string(ph),
                     std::to_string(space.at(k).slices),
                     std::to_string(space.at(k).banks),
                     CsvWriter::num(perf[k], 4)});
        }
        std::size_t global = static_cast<std::size_t>(
            std::max_element(perf.begin(), perf.end())
            - perf.begin());
        best_of_phase.push_back(global);

        std::printf("--- Phase %zu (%s) ---\n", ph + 1,
                    phase.name.c_str());
        std::printf("%8s", "L2\\S");
        for (std::uint32_t s = 1; s <= 8; ++s)
            std::printf("%9u", s);
        std::printf("\n");
        int locals = 0;
        for (std::uint32_t b = 1; b <= 128; b *= 2) {
            std::printf("%6uKB", b * 64);
            for (std::uint32_t s = 1; s <= 8; ++s) {
                std::size_t k = space.indexOf({s, b});
                char mark = ' ';
                if (k == global) {
                    mark = '*';
                } else if (isLocalOptimum(space, perf, k, global)) {
                    mark = '+';
                    ++locals;
                }
                std::printf("  %6.3f%c", perf[k], mark);
            }
            std::printf("\n");
        }
        locals_per_phase.push_back(locals);
        std::printf("optimum: %s   local optima: %d\n\n",
                    space.at(global).str().c_str(), locals);
    }

    // ---- Fig 1k: phase breakdown summary.
    std::printf("=== Fig 1k: phase breakdown ===\n");
    std::printf("%-6s %-12s %-10s %s\n", "phase", "name",
                "optimum", "local optima");
    int phases_with_locals = 0;
    int optimum_moves = 0;
    for (std::size_t ph = 0; ph < best_of_phase.size(); ++ph) {
        std::printf("%-6zu %-12s %-10s %d\n", ph + 1,
                    x264.phases[ph].name.c_str(),
                    space.at(best_of_phase[ph]).str().c_str(),
                    locals_per_phase[ph]);
        phases_with_locals += locals_per_phase[ph] > 0;
        if (ph > 0)
            optimum_moves += best_of_phase[ph]
                != best_of_phase[ph - 1];
    }
    std::printf("\nphases with local optima: %d / %zu "
                "(paper: 6 / 10)\n",
                phases_with_locals, best_of_phase.size());
    std::printf("consecutive-phase optimum moves: %d / %zu "
                "(paper: 9 / 9, \"no two consecutive phases have "
                "the same optimal configuration\")\n",
                optimum_moves, best_of_phase.size() - 1);
    bench::finishBench(engine, "fig1_phases");
    return 0;
}
