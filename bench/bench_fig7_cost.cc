/**
 * @file
 * Paper Fig 7 + Table III: cost and QoS violations for the four
 * fine-grain resource allocators (Optimal, ConvexOpt, Race-to-idle,
 * CASH) across all 13 applications.
 *
 * Costs are reported as mean cost rate in $/hr (the paper's "Cost
 * ($)" bars are proportional). Table III's geometric means and
 * cost ratios to optimal are printed at the end next to the paper's
 * reference values (1.00 / 1.23 / 1.78 / 1.03).
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace cash;

int
main()
{
    ConfigSpace space;
    CostModel cost;
    const PolicyKind kinds[] = {PolicyKind::Oracle,
                                PolicyKind::ConvexOpt,
                                PolicyKind::RaceToIdle,
                                PolicyKind::Cash};

    std::printf("=== Fig 7: cost and QoS violations per "
                "application ===\n\n");
    std::printf("%-12s", "app");
    for (PolicyKind k : kinds)
        std::printf(" %10s$ %9s%%", policyName(k), policyName(k));
    std::printf("\n");

    bench::CsvSink csv("fig7_cost",
                       {"app", "policy", "cost_rate", "viol_pct",
                        "mean_qos", "reconfigs"});

    std::map<PolicyKind, std::vector<double>> rates;
    for (const AppModel &raw : allApps()) {
        ExperimentParams ep =
            bench::benchParams(raw.isRequestDriven());
        AppModel app = raw.isRequestDriven()
            ? raw
            : scalePhases(raw, ep.phaseScale);
        AppProfile prof = characterize(app, space, ep.fabric,
                                       ep.sim,
                                       bench::benchProfile());
        std::printf("%-12s", app.name.c_str());
        for (PolicyKind k : kinds) {
            RunOutput out =
                runPolicy(app, prof, k, space, cost, ep);
            double hours =
                static_cast<double>(out.stats.cycles) / 1e9
                / 3600.0;
            double rate = hours > 0 ? out.stats.cost / hours : 0;
            rates[k].push_back(rate);
            std::printf(" %11.4f %9.1f", rate,
                        out.stats.violationPct());
            csv.row({app.name, out.policy,
                     CsvWriter::num(rate, 5),
                     CsvWriter::num(out.stats.violationPct(), 2),
                     CsvWriter::num(out.stats.meanQos(), 3),
                     std::to_string(out.stats.reconfigs)});
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("\n=== Table III: cost comparison (geometric "
                "means) ===\n");
    std::printf("%-14s %14s %14s %16s\n", "policy",
                "geomean $/hr", "ratio", "paper ratio");
    double opt_geo = geomean(rates[PolicyKind::Oracle]);
    const char *paper_ratio[] = {"1.00", "1.23", "1.78", "1.03"};
    int i = 0;
    for (PolicyKind k : kinds) {
        double geo = geomean(rates[k]);
        std::printf("%-14s %14.4f %13.2fx %16s\n", policyName(k),
                    geo, geo / opt_geo, paper_ratio[i++]);
    }
    std::printf("\npaper reference: CASH within ~3%% of optimal "
                "cost with <2%% violations; convex optimization "
                "1.23x with frequent violations; race-to-idle "
                "1.78x with none.\n");
    return 0;
}
