/**
 * @file
 * Paper Fig 7 + Table III: cost and QoS violations for the four
 * fine-grain resource allocators (Optimal, ConvexOpt, Race-to-idle,
 * CASH) across all 13 applications.
 *
 * The 13 x 4 grid is declared as evaluation cells and executed in
 * parallel by the experiment engine; results are formatted in
 * declaration order afterwards, so the output is identical at any
 * CASH_BENCH_THREADS.
 *
 * Costs are reported as mean cost rate in $/hr (the paper's "Cost
 * ($)" bars are proportional). Table III's geometric means and
 * cost ratios to optimal are printed at the end next to the paper's
 * reference values (1.00 / 1.23 / 1.78 / 1.03).
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace cash;

int
main(int argc, char **argv)
{
    bench::TraceOptions trace_opts(argc, argv);
    ConfigSpace space;
    CostModel cost;
    const PolicyKind kinds[] = {PolicyKind::Oracle,
                                PolicyKind::ConvexOpt,
                                PolicyKind::RaceToIdle,
                                PolicyKind::Cash};

    harness::ExperimentEngine engine;
    std::vector<harness::EvalSpec> specs;
    for (const AppModel &raw : allApps()) {
        ExperimentParams ep =
            bench::benchParams(raw.isRequestDriven());
        AppModel app = harness::prepareApp(raw, ep);
        for (PolicyKind k : kinds)
            specs.push_back({"", app, k, &space, ep});
    }
    std::vector<harness::EvalResult> results = harness::runEvalGrid(
        engine, specs, cost, bench::benchProfile());

    std::printf("=== Fig 7: cost and QoS violations per "
                "application ===\n\n");
    std::printf("%-12s", "app");
    for (PolicyKind k : kinds)
        std::printf(" %10s$ %9s%%", policyName(k), policyName(k));
    std::printf("\n");

    bench::CsvSink csv("fig7_cost",
                       {"app", "policy", "cost_rate", "viol_pct",
                        "mean_qos", "reconfigs"});

    std::map<PolicyKind, std::vector<double>> rates;
    std::size_t i = 0;
    for (const AppModel &raw : allApps()) {
        std::printf("%-12s", raw.name.c_str());
        for (PolicyKind k : kinds) {
            const harness::EvalResult &r = results[i++];
            rates[k].push_back(r.costRate);
            std::printf(" %11.4f %9.1f", r.costRate,
                        r.out.stats.violationPct());
            csv.row({r.appName, r.out.policy,
                     CsvWriter::num(r.costRate, 5),
                     CsvWriter::num(r.out.stats.violationPct(), 2),
                     CsvWriter::num(r.out.stats.meanQos(), 3),
                     std::to_string(r.out.stats.reconfigs)});
        }
        std::printf("\n");
    }

    std::printf("\n=== Table III: cost comparison (geometric "
                "means) ===\n");
    std::printf("%-14s %14s %14s %16s\n", "policy",
                "geomean $/hr", "ratio", "paper ratio");
    double opt_geo = geomean(rates[PolicyKind::Oracle]);
    const char *paper_ratio[] = {"1.00", "1.23", "1.78", "1.03"};
    int p = 0;
    for (PolicyKind k : kinds) {
        double geo = geomean(rates[k]);
        std::printf("%-14s %14.4f %13.2fx %16s\n", policyName(k),
                    geo, geo / opt_geo, paper_ratio[p++]);
    }
    std::printf("\npaper reference: CASH within ~3%% of optimal "
                "cost with <2%% violations; convex optimization "
                "1.23x with frequent violations; race-to-idle "
                "1.78x with none.\n");
    bench::finishBench(engine, "fig7_cost");
    return 0;
}
