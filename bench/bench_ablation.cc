/**
 * @file
 * Ablation study of the CASH runtime's design choices (the knobs
 * DESIGN.md calls out beyond the paper's equations): what each
 * mechanism buys on a phase-heavy throughput workload.
 *
 * Variants, cumulative against the full runtime:
 *   full          — everything on (the shipped defaults)
 *   no-deadband   — controller reacts to every wiggle
 *   no-damping    — pure deadbeat gain (the paper's literal Eqn 2);
 *                   with a one-quantum delay this rings
 *   no-stickiness — near-tie schedule changes allowed every quantum
 *   no-exploration— epsilon = 0
 *   no-guardband  — setpoint exactly 1.0
 *   coarse-quantum/fine-quantum — tau sensitivity
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cash;

namespace
{

struct Variant
{
    const char *name;
    RuntimeParams params;
};

} // namespace

int
main()
{
    ConfigSpace space;
    CostModel cost;
    ExperimentParams ep = bench::benchParams();
    AppModel app = scalePhases(appByName("x264"), ep.phaseScale);
    AppProfile prof = characterize(app, space, ep.fabric, ep.sim,
                                   bench::benchProfile());
    std::printf("=== Ablation: CASH runtime design choices on "
                "x264 (target %.4f IPC) ===\n\n", prof.qosTarget);

    RuntimeParams base;
    std::vector<Variant> variants;
    variants.push_back({"full", base});
    {
        RuntimeParams p = base;
        p.deadband = 0.0;
        variants.push_back({"no-deadband", p});
    }
    {
        RuntimeParams p = base;
        p.controlGain = 1.0;
        variants.push_back({"no-damping", p});
    }
    {
        RuntimeParams p = base;
        p.stickiness = 0.0;
        variants.push_back({"no-stickiness", p});
    }
    {
        RuntimeParams p = base;
        p.epsilon = 0.0;
        variants.push_back({"no-exploration", p});
    }
    {
        RuntimeParams p = base;
        p.guardBand = 1.0;
        variants.push_back({"no-guardband", p});
    }

    bench::CsvSink csv("ablation",
                       {"variant", "cost_rate", "viol_pct",
                        "mean_qos", "reconfigs"});

    std::printf("%-16s %12s %10s %10s %10s\n", "variant",
                "rate $/hr", "viol %", "mean QoS", "reconfigs");
    for (const Variant &v : variants) {
        ExperimentParams run = ep;
        run.runtime = v.params;
        RunOutput out = runPolicy(app, prof, PolicyKind::Cash,
                                  space, cost, run);
        double hours =
            static_cast<double>(out.stats.cycles) / 1e9 / 3600.0;
        double rate = hours > 0 ? out.stats.cost / hours : 0.0;
        std::printf("%-16s %12.4f %10.1f %10.2f %10u\n", v.name,
                    rate, out.stats.violationPct(),
                    out.stats.meanQos(), out.stats.reconfigs);
        csv.row({v.name, CsvWriter::num(rate, 5),
                 CsvWriter::num(out.stats.violationPct(), 2),
                 CsvWriter::num(out.stats.meanQos(), 3),
                 std::to_string(out.stats.reconfigs)});
        std::fflush(stdout);
    }

    // Quantum sensitivity.
    std::printf("\nquantum (tau) sensitivity:\n");
    for (Cycle q : {Cycle{500'000}, Cycle{1'000'000},
                    Cycle{2'000'000}, Cycle{4'000'000}}) {
        ExperimentParams run = ep;
        run.quantum = q;
        RunOutput out = runPolicy(app, prof, PolicyKind::Cash,
                                  space, cost, run);
        double hours =
            static_cast<double>(out.stats.cycles) / 1e9 / 3600.0;
        std::printf("  tau=%4lluK: rate $%.4f/hr, viol %5.1f%%, "
                    "reconfigs %u\n",
                    static_cast<unsigned long long>(q / 1000),
                    out.stats.cost / hours,
                    out.stats.violationPct(), out.stats.reconfigs);
        std::fflush(stdout);
    }
    return 0;
}
