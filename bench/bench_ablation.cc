/**
 * @file
 * Ablation study of the CASH runtime's design choices (the knobs
 * DESIGN.md calls out beyond the paper's equations): what each
 * mechanism buys on a phase-heavy throughput workload. All
 * variants (plus the quantum sweep) share one characterization and
 * run as parallel engine cells.
 *
 * Variants, cumulative against the full runtime:
 *   full          — everything on (the shipped defaults)
 *   no-deadband   — controller reacts to every wiggle
 *   no-damping    — pure deadbeat gain (the paper's literal Eqn 2);
 *                   with a one-quantum delay this rings
 *   no-stickiness — near-tie schedule changes allowed every quantum
 *   no-exploration— epsilon = 0
 *   no-guardband  — setpoint exactly 1.0
 *   coarse-quantum/fine-quantum — tau sensitivity
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cash;

namespace
{

struct Variant
{
    const char *name;
    RuntimeParams params;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::TraceOptions trace_opts(argc, argv);
    ConfigSpace space;
    CostModel cost;
    ExperimentParams ep = bench::benchParams();
    AppModel app = harness::prepareApp(appByName("x264"), ep);

    RuntimeParams base;
    std::vector<Variant> variants;
    variants.push_back({"full", base});
    {
        RuntimeParams p = base;
        p.deadband = 0.0;
        variants.push_back({"no-deadband", p});
    }
    {
        RuntimeParams p = base;
        p.controlGain = 1.0;
        variants.push_back({"no-damping", p});
    }
    {
        RuntimeParams p = base;
        p.stickiness = 0.0;
        variants.push_back({"no-stickiness", p});
    }
    {
        RuntimeParams p = base;
        p.epsilon = 0.0;
        variants.push_back({"no-exploration", p});
    }
    {
        RuntimeParams p = base;
        p.guardBand = 1.0;
        variants.push_back({"no-guardband", p});
    }
    const Cycle quanta[] = {500'000, 1'000'000, 2'000'000,
                           4'000'000};

    // One spec per variant, then one per quantum setting; all CASH
    // runs over the same app, space and characterization.
    harness::ExperimentEngine engine;
    std::vector<harness::EvalSpec> specs;
    for (const Variant &v : variants) {
        ExperimentParams run = ep;
        run.runtime = v.params;
        specs.push_back({v.name, app, PolicyKind::Cash, &space,
                         run});
    }
    for (Cycle q : quanta) {
        ExperimentParams run = ep;
        run.quantum = q;
        specs.push_back({strfmt("tau=%lluK",
                                static_cast<unsigned long long>(
                                    q / 1000)),
                         app, PolicyKind::Cash, &space, run});
    }
    std::vector<harness::EvalResult> results = harness::runEvalGrid(
        engine, specs, cost, bench::benchProfile());

    std::printf("=== Ablation: CASH runtime design choices on "
                "x264 (target %.4f IPC) ===\n\n",
                results[0].profile.qosTarget);

    bench::CsvSink csv("ablation",
                       {"variant", "cost_rate", "viol_pct",
                        "mean_qos", "reconfigs"});

    std::printf("%-16s %12s %10s %10s %10s\n", "variant",
                "rate $/hr", "viol %", "mean QoS", "reconfigs");
    for (std::size_t i = 0; i < variants.size(); ++i) {
        const harness::EvalResult &r = results[i];
        std::printf("%-16s %12.4f %10.1f %10.2f %10u\n",
                    r.label.c_str(), r.costRate,
                    r.out.stats.violationPct(),
                    r.out.stats.meanQos(), r.out.stats.reconfigs);
        csv.row({r.label, CsvWriter::num(r.costRate, 5),
                 CsvWriter::num(r.out.stats.violationPct(), 2),
                 CsvWriter::num(r.out.stats.meanQos(), 3),
                 std::to_string(r.out.stats.reconfigs)});
    }

    // Quantum sensitivity.
    std::printf("\nquantum (tau) sensitivity:\n");
    for (std::size_t i = variants.size(); i < results.size(); ++i) {
        const harness::EvalResult &r = results[i];
        std::printf("  %s: rate $%.4f/hr, viol %5.1f%%, "
                    "reconfigs %u\n",
                    r.label.c_str(), r.costRate,
                    r.out.stats.violationPct(),
                    r.out.stats.reconfigs);
    }
    bench::finishBench(engine, "ablation");
    return 0;
}
