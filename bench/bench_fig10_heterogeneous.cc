/**
 * @file
 * Paper Fig 10 + Sec VI-E: coarse-grain (big.LITTLE-style)
 * heterogeneity vs CASH's fine-grain configurability, each under
 * race-to-idle and adaptive management.
 *
 * Four points per application:
 *   CoarseGrain,race   — {big, little} space, worst-case config
 *   CoarseGrain,adapt  — {big, little} space, CASH runtime
 *   FineGrain,race     — full 64-config space, worst-case config
 *   CASH               — full space, CASH runtime
 *
 * The paper's big core is 8 Slices + 4 MB (the largest config any
 * app needs); the little is 1 Slice + 128 KB (the most
 * cost-efficient on average). Reference geomeans: $0.062 / $0.048 /
 * $0.029 / $0.017 — over 70% savings for CASH vs CoarseGrain,race.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace cash;

int
main()
{
    ConfigSpace fine;
    ConfigSpace coarse(
        std::vector<VCoreConfig>{{1, 2}, {8, 64}});
    CostModel cost;

    struct Cell
    {
        const char *label;
        const ConfigSpace *space;
        PolicyKind kind;
    };
    const Cell cells[] = {
        {"CoarseGrain,race", &coarse, PolicyKind::RaceToIdle},
        {"CoarseGrain,adapt", &coarse, PolicyKind::Cash},
        {"FineGrain,race", &fine, PolicyKind::RaceToIdle},
        {"CASH", &fine, PolicyKind::Cash},
    };

    std::printf("=== Fig 10: coarse vs fine grain, race vs "
                "adaptive ===\n");
    std::printf("big = 8S/4MB, little = 1S/128KB\n\n");
    std::printf("%-12s", "app");
    for (const Cell &c : cells)
        std::printf(" %17s$ %6s%%", c.label, "viol");
    std::printf("\n");

    bench::CsvSink csv("fig10_heterogeneous",
                       {"app", "scheme", "cost_rate", "viol_pct"});

    std::map<const char *, std::vector<double>> rates;
    for (const AppModel &raw : allApps()) {
        ExperimentParams ep =
            bench::benchParams(raw.isRequestDriven());
        AppModel app = raw.isRequestDriven()
            ? raw
            : scalePhases(raw, ep.phaseScale);
        std::printf("%-12s", app.name.c_str());
        for (const Cell &c : cells) {
            AppProfile prof = characterize(
                app, *c.space, ep.fabric, ep.sim,
                bench::benchProfile());
            RunOutput out = runPolicy(app, prof, c.kind, *c.space,
                                      cost, ep);
            double hours =
                static_cast<double>(out.stats.cycles) / 1e9
                / 3600.0;
            double rate = hours > 0 ? out.stats.cost / hours : 0;
            rates[c.label].push_back(rate);
            std::printf(" %18.4f %6.1f", rate,
                        out.stats.violationPct());
            csv.row({app.name, c.label, CsvWriter::num(rate, 5),
                     CsvWriter::num(out.stats.violationPct(), 2)});
        }
        std::printf("\n");
        std::fflush(stdout);
    }

    std::printf("\n=== Sec VI-E summary (geometric means) ===\n");
    std::printf("%-20s %14s %12s %14s\n", "scheme",
                "geomean $/hr", "vs CG,race", "paper $");
    const char *paper[] = {"0.062", "0.048", "0.029", "0.017"};
    double cg_race = geomean(rates["CoarseGrain,race"]);
    int i = 0;
    for (const Cell &c : cells) {
        double geo = geomean(rates[c.label]);
        std::printf("%-20s %14.4f %11.1f%% %14s\n", c.label, geo,
                    100.0 * (1.0 - geo / cg_race), paper[i++]);
    }
    std::printf("\npaper reference: adaptation alone saves ~25%%, "
                "fine-grain alone >50%%, and CASH's combination "
                ">70%% vs racing on the heterogeneous pair.\n");
    return 0;
}
