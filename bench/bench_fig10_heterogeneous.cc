/**
 * @file
 * Paper Fig 10 + Sec VI-E: coarse-grain (big.LITTLE-style)
 * heterogeneity vs CASH's fine-grain configurability, each under
 * race-to-idle and adaptive management.
 *
 * Four points per application, declared as engine cells (one
 * characterization per (app, space) pair, policy runs in parallel):
 *   CoarseGrain,race   — {big, little} space, worst-case config
 *   CoarseGrain,adapt  — {big, little} space, CASH runtime
 *   FineGrain,race     — full 64-config space, worst-case config
 *   CASH               — full space, CASH runtime
 *
 * The paper's big core is 8 Slices + 4 MB (the largest config any
 * app needs); the little is 1 Slice + 128 KB (the most
 * cost-efficient on average). Reference geomeans: $0.062 / $0.048 /
 * $0.029 / $0.017 — over 70% savings for CASH vs CoarseGrain,race.
 */

#include <cstdio>
#include <map>

#include "bench_util.hh"
#include "common/stats.hh"

using namespace cash;

int
main(int argc, char **argv)
{
    bench::TraceOptions trace_opts(argc, argv);
    ConfigSpace fine;
    ConfigSpace coarse(
        std::vector<VCoreConfig>{{1, 2}, {8, 64}});
    CostModel cost;

    struct Scheme
    {
        const char *label;
        const ConfigSpace *space;
        PolicyKind kind;
    };
    const Scheme schemes[] = {
        {"CoarseGrain,race", &coarse, PolicyKind::RaceToIdle},
        {"CoarseGrain,adapt", &coarse, PolicyKind::Cash},
        {"FineGrain,race", &fine, PolicyKind::RaceToIdle},
        {"CASH", &fine, PolicyKind::Cash},
    };

    harness::ExperimentEngine engine;
    std::vector<harness::EvalSpec> specs;
    for (const AppModel &raw : allApps()) {
        ExperimentParams ep =
            bench::benchParams(raw.isRequestDriven());
        AppModel app = harness::prepareApp(raw, ep);
        for (const Scheme &s : schemes)
            specs.push_back({s.label, app, s.kind, s.space, ep});
    }
    std::vector<harness::EvalResult> results = harness::runEvalGrid(
        engine, specs, cost, bench::benchProfile());

    std::printf("=== Fig 10: coarse vs fine grain, race vs "
                "adaptive ===\n");
    std::printf("big = 8S/4MB, little = 1S/128KB\n\n");
    std::printf("%-12s", "app");
    for (const Scheme &s : schemes)
        std::printf(" %17s$ %6s%%", s.label, "viol");
    std::printf("\n");

    bench::CsvSink csv("fig10_heterogeneous",
                       {"app", "scheme", "cost_rate", "viol_pct"});

    std::map<std::string, std::vector<double>> rates;
    std::size_t i = 0;
    for (const AppModel &raw : allApps()) {
        std::printf("%-12s", raw.name.c_str());
        for (const Scheme &s : schemes) {
            const harness::EvalResult &r = results[i++];
            rates[s.label].push_back(r.costRate);
            std::printf(" %18.4f %6.1f", r.costRate,
                        r.out.stats.violationPct());
            csv.row({r.appName, r.label,
                     CsvWriter::num(r.costRate, 5),
                     CsvWriter::num(r.out.stats.violationPct(),
                                    2)});
        }
        std::printf("\n");
    }

    std::printf("\n=== Sec VI-E summary (geometric means) ===\n");
    std::printf("%-20s %14s %12s %14s\n", "scheme",
                "geomean $/hr", "vs CG,race", "paper $");
    const char *paper[] = {"0.062", "0.048", "0.029", "0.017"};
    double cg_race = geomean(rates["CoarseGrain,race"]);
    int p = 0;
    for (const Scheme &s : schemes) {
        double geo = geomean(rates[s.label]);
        std::printf("%-20s %14.4f %11.1f%% %14s\n", s.label, geo,
                    100.0 * (1.0 - geo / cg_race), paper[p++]);
    }
    std::printf("\npaper reference: adaptation alone saves ~25%%, "
                "fine-grain alone >50%%, and CASH's combination "
                ">70%% vs racing on the heterogeneous pair.\n");
    bench::finishBench(engine, "fig10_heterogeneous");
    return 0;
}
