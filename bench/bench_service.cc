/**
 * @file
 * Service front-end under concurrent load: the daemon stack
 * (ServiceServer + ServiceCore + wire protocol) exercised loopback,
 * in-process, over a (sessions x arrival-rate x shards) grid.
 *
 * One cell per grid point: a fresh region (ServiceServer owning
 * `shards` providers) on its own Unix socket, driven by
 * service/loadgen.hh with that cell's session count and open-loop
 * send rate, then drained (final bills + billing-conservation
 * audit, aggregated across shards) through stop().
 *
 * Determinism contract: the *request interleaving* across sessions
 * is scheduling-dependent, so per-cell provider economics are not
 * reproducible — what IS invariant is the response-accounting
 * contract, and that is all stdout/CSV reports: every sent request
 * produced exactly one response (acked == sent, dropped == 0), no
 * session failed, and the post-drain audit passed. Those values are
 * byte-identical at any CASH_BENCH_THREADS, which keeps this bench
 * inside the engine determinism gate. Timing (latency percentiles,
 * throughput, queue_full counts — all host-dependent) goes to
 * stderr only.
 *
 *   CASH_BENCH_FAST=1 shrinks the grid and per-session requests.
 */

#include <cstdio>
#include <unistd.h>
#include <vector>

#include "bench_util.hh"
#include "cloud/provider.hh"
#include "service/loadgen.hh"
#include "service/server.hh"

using namespace cash;

namespace
{

struct CellResult
{
    std::uint64_t sent = 0;
    std::uint64_t received = 0;
    std::uint64_t queueFull = 0; ///< stderr only (host-dependent)
    unsigned failedSessions = 0;
    bool drained = false; ///< drain report ok + audit passed
    double latP50Us = 0.0;
    double latP90Us = 0.0;
    double reqPerSec = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    // The per-cell host-throughput lines go to stderr via inform();
    // tools/perf_trajectory.sh scrapes them, so force Info level.
    setLogLevel(LogLevel::Info);
    bench::TraceOptions trace_opts(argc, argv);

    const unsigned session_grid[] = {4, 16, 64};
    const double rate_grid[] = {0.0, 2000.0}; // 0 = unpaced
    const unsigned shard_grid[] = {1, 4};
    const unsigned requests = bench::fastMode() ? 12 : 40;

    struct Point
    {
        std::size_t s, r, h;
    };
    std::vector<Point> points;
    for (std::size_t s = 0; s < std::size(session_grid); ++s)
        for (std::size_t r = 0; r < std::size(rate_grid); ++r)
            for (std::size_t h = 0; h < std::size(shard_grid); ++h)
                points.push_back({s, r, h});

    harness::ExperimentEngine engine;
    std::vector<CellResult> results = engine.map<CellResult>(
        points.size(),
        [&](std::size_t i) {
            const Point &pt = points[i];

            cloud::ProviderParams pp;
            pp.arrivalProb = 0.0; // arrivals only via requests
            pp.quantum = 200'000; // cheap steps: this bench
                                  // measures the front-end
            pp.seed = 0x5EED + i;

            service::ServerConfig sc;
            sc.unixPath = strfmt("/tmp/cash_bench_svc.%d.%zu.sock",
                                 static_cast<int>(::getpid()), i);
            sc.shards = shard_grid[pt.h];
            sc.ioThreads = shard_grid[pt.h] > 1 ? 2 : 1;
            service::ServiceServer server(pp, sc);
            server.start();

            service::LoadConfig lc;
            lc.unixPath = sc.unixPath;
            lc.sessions = session_grid[pt.s];
            lc.requests = requests;
            lc.rate = rate_grid[pt.r];
            lc.window = 4;
            lc.seed = 0xCA5 + i;
            lc.classes = static_cast<unsigned>(
                server.provider(0).params().catalog.size());
            lc.stepProb = 0.10;
            service::LoadReport rep = service::runLoad(lc);

            // The SIGTERM path: drain the provider (final bills,
            // billing-conservation audit inside drainReport) and
            // flush. An audit failure throws out of stop() and
            // fails the cell.
            server.stop();

            CellResult r;
            r.sent = rep.sent;
            r.received = rep.received;
            r.queueFull = rep.queueFull;
            r.failedSessions = rep.failedSessions;
            r.drained = server.finalReport()
                            .getBool("ok")
                            .value_or(false);
            r.latP50Us = rep.latP50Us;
            r.latP90Us = rep.latP90Us;
            r.reqPerSec = rep.elapsedSec > 0.0
                ? static_cast<double>(rep.received)
                    / rep.elapsedSec
                : 0.0;
            return r;
        },
        [&](std::size_t i) {
            const Point &pt = points[i];
            return harness::CellKey{
                strfmt("%u-sessions-%u-shards", session_grid[pt.s],
                       shard_grid[pt.h]),
                rate_grid[pt.r] == 0.0 ? "unpaced" : "paced",
                i, 0x5EED};
        });

    std::printf("=== Service front-end: response accounting under "
                "concurrent load ===\n");
    std::printf("%u requests/session, window 4, one daemon per "
                "cell, drain-on-stop\n",
                requests);
    std::printf("  %-9s %-8s %7s %7s %7s %7s %7s %8s\n",
                "sessions", "pacing", "shards", "sent", "acked",
                "dropped", "failed", "drained");

    bench::CsvSink csv("service",
                       {"sessions", "pacing", "shards", "requests",
                        "sent", "acked", "dropped",
                        "failed_sessions", "drained"});

    bool contract_held = true;
    for (std::size_t i = 0; i < points.size(); ++i) {
        const Point &pt = points[i];
        const CellResult &r = results[i];
        const char *pacing =
            rate_grid[pt.r] == 0.0 ? "unpaced" : "2000/s";
        std::uint64_t dropped = r.sent - r.received;
        std::printf("  %-9u %-8s %7u %7llu %7llu %7llu %7u %8s\n",
                    session_grid[pt.s], pacing, shard_grid[pt.h],
                    static_cast<unsigned long long>(r.sent),
                    static_cast<unsigned long long>(r.received),
                    static_cast<unsigned long long>(dropped),
                    r.failedSessions, r.drained ? "yes" : "NO");
        csv.row({std::to_string(session_grid[pt.s]), pacing,
                 std::to_string(shard_grid[pt.h]),
                 std::to_string(requests),
                 std::to_string(r.sent), std::to_string(r.received),
                 std::to_string(dropped),
                 std::to_string(r.failedSessions),
                 r.drained ? "yes" : "no"});
        if (dropped != 0 || r.failedSessions != 0 || !r.drained)
            contract_held = false;
        // Host timing: stderr only, stdout stays deterministic.
        inform("service %u sessions %s x%u shards: %.0f req/s, "
               "latency us p50=%.0f p90=%.0f, queue_full=%llu",
               session_grid[pt.s], pacing, shard_grid[pt.h],
               r.reqPerSec, r.latP50Us, r.latP90Us,
               static_cast<unsigned long long>(r.queueFull));
    }

    std::printf("\ncontract: every request answered exactly once, "
                "clean drains: %s\n",
                contract_held ? "HELD" : "VIOLATED");

    bench::finishBench(engine, "service");
    return contract_held ? 0 : 1;
}
