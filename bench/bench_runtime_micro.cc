/**
 * @file
 * google-benchmark microbenchmarks of the CASH runtime's decision
 * components — the pieces whose O(1)/O(K) cost underwrites the
 * paper's "low overhead" claim (Sec VI-A).
 */

#include <benchmark/benchmark.h>

#include "core/config_space.hh"
#include "core/controller.hh"
#include "core/kalman.hh"
#include "core/optimizer.hh"
#include "core/qlearn.hh"

namespace cash
{
namespace
{

const ConfigSpace &
space()
{
    static ConfigSpace s;
    return s;
}

const CostModel &
costModel()
{
    static CostModel c;
    return c;
}

void
BM_ControllerStep(benchmark::State &state)
{
    DeadbeatController ctrl;
    double q = 0.9;
    for (auto _ : state) {
        benchmark::DoNotOptimize(ctrl.step(q, 1.0));
        q = q > 1.0 ? 0.9 : 1.1;
    }
}
BENCHMARK(BM_ControllerStep);

void
BM_KalmanUpdate(benchmark::State &state)
{
    KalmanEstimator kalman;
    double q = 0.5;
    for (auto _ : state) {
        benchmark::DoNotOptimize(kalman.update(q, 1.2));
        q += 0.001;
        if (q > 2.0)
            q = 0.5;
    }
}
BENCHMARK(BM_KalmanUpdate);

void
BM_LearnerUpdate(benchmark::State &state)
{
    SpeedupLearner learner(space(), 0.3);
    std::size_t k = 0;
    for (auto _ : state) {
        learner.update(k, 1.0 + 0.01 * static_cast<double>(k));
        k = (k + 1) % space().size();
    }
}
BENCHMARK(BM_LearnerUpdate);

void
BM_OptimizerSolve(benchmark::State &state)
{
    TwoConfigOptimizer opt(space(), costModel());
    auto table = [](std::size_t k) {
        return 0.3 + 0.05 * static_cast<double>(k);
    };
    double demand = 1.0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            opt.solve(demand, 1'000'000, table));
        demand = demand > 2.5 ? 1.0 : demand + 0.1;
    }
}
BENCHMARK(BM_OptimizerSolve);

void
BM_FullDecision(benchmark::State &state)
{
    // Controller + Kalman + optimizer scan: everything Algorithm 1
    // computes per quantum besides the hardware interaction.
    DeadbeatController ctrl;
    KalmanEstimator kalman;
    SpeedupLearner learner(space(), 0.3);
    TwoConfigOptimizer opt(space(), costModel());
    double q = 0.9;
    for (auto _ : state) {
        double b = kalman.update(q, 1.0);
        double demand = ctrl.step(q, std::clamp(b, 0.25, 4.0));
        QuantumSchedule sched = opt.solve(
            demand, 1'000'000,
            [&](std::size_t k) { return learner.qhat(k); });
        learner.update(sched.over, q);
        benchmark::DoNotOptimize(sched);
        q = q > 1.0 ? 0.93 : 1.07;
    }
}
BENCHMARK(BM_FullDecision);

} // namespace
} // namespace cash

BENCHMARK_MAIN();
