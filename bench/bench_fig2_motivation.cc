/**
 * @file
 * Paper Fig 2: the motivational comparison of fine-grain resource
 * allocators on x264 — Optimal vs Race-to-idle vs ConvexOpt.
 *
 * The three policy runs are declared as engine cells (sharing one
 * characterization) and executed in parallel. Prints cost rate
 * ($/hr) and normalized performance as a time series, then the
 * total-cost ratios (the paper reports both race-to-idle and convex
 * optimization above 4.5x optimal for x264's non-convex,
 * phase-heavy profile).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cash;

int
main(int argc, char **argv)
{
    bench::TraceOptions trace_opts(argc, argv);
    ConfigSpace space;
    CostModel cost;
    ExperimentParams ep = bench::seriesParams();
    AppModel app = harness::prepareApp(appByName("x264"), ep);

    harness::ExperimentEngine engine;
    std::vector<harness::EvalSpec> specs;
    for (PolicyKind k : {PolicyKind::Oracle, PolicyKind::RaceToIdle,
                         PolicyKind::ConvexOpt})
        specs.push_back({"", app, k, &space, ep});
    std::vector<harness::EvalResult> runs = harness::runEvalGrid(
        engine, specs, cost, bench::benchProfile());

    std::printf("=== Fig 2: fine-grain resource allocators on "
                "x264 ===\n");
    std::printf("QoS target: %.4f IPC\n\n",
                runs[0].profile.qosTarget);

    bench::CsvSink csv("fig2_motivation",
                       {"policy", "mcycles", "cost_rate", "qos"});
    for (const harness::EvalResult &r : runs) {
        for (const SeriesPoint &pt : r.out.series) {
            csv.row({r.out.policy,
                     CsvWriter::num(pt.cycle / 1e6, 2),
                     CsvWriter::num(pt.costRate, 5),
                     CsvWriter::num(pt.qos, 4)});
        }
    }

    // Downsampled time-series table.
    std::printf("%-10s", "Mcycles");
    for (const harness::EvalResult &r : runs)
        std::printf("  %10s$/hr %9sQoS", r.out.policy.c_str(),
                    r.out.policy.c_str());
    std::printf("\n");
    std::size_t points = runs[0].out.series.size();
    for (std::size_t i = 0; i < points; i += 4) {
        std::printf("%-10.0f",
                    runs[0].out.series[i].cycle / 1e6);
        for (const harness::EvalResult &r : runs) {
            const SeriesPoint &pt =
                r.out.series[std::min(i, r.out.series.size() - 1)];
            std::printf("  %13.4f  %9.3f", pt.costRate, pt.qos);
        }
        std::printf("\n");
    }

    std::printf("\n%-12s %12s %10s %12s\n", "policy", "rate $/hr",
                "viol %", "vs optimal");
    double optimal_rate = runs[0].costRate;
    for (const harness::EvalResult &r : runs) {
        std::printf("%-12s %12.4f %10.1f %11.2fx\n",
                    r.out.policy.c_str(), r.costRate,
                    r.out.stats.violationPct(),
                    r.costRate / optimal_rate);
    }
    std::printf("\npaper reference: race-to-idle and convex "
                "optimization both exceed 4.5x optimal cost on "
                "x264; convex also violates QoS repeatedly.\n");
    bench::finishBench(engine, "fig2_motivation");
    return 0;
}
