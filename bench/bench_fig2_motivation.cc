/**
 * @file
 * Paper Fig 2: the motivational comparison of fine-grain resource
 * allocators on x264 — Optimal vs Race-to-idle vs ConvexOpt.
 *
 * Prints cost rate ($/hr) and normalized performance as a time
 * series, then the total-cost ratios (the paper reports both
 * race-to-idle and convex optimization above 4.5x optimal for
 * x264's non-convex, phase-heavy profile).
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cash;

int
main()
{
    ConfigSpace space;
    CostModel cost;
    ExperimentParams ep = bench::seriesParams();
    AppModel app = scalePhases(appByName("x264"), ep.phaseScale);
    AppProfile prof = characterize(app, space, ep.fabric, ep.sim,
                                   bench::benchProfile());

    std::printf("=== Fig 2: fine-grain resource allocators on "
                "x264 ===\n");
    std::printf("QoS target: %.4f IPC\n\n", prof.qosTarget);

    bench::CsvSink csv("fig2_motivation",
                       {"policy", "mcycles", "cost_rate", "qos"});

    std::vector<RunOutput> runs;
    for (PolicyKind k : {PolicyKind::Oracle, PolicyKind::RaceToIdle,
                         PolicyKind::ConvexOpt}) {
        runs.push_back(runPolicy(app, prof, k, space, cost, ep));
        for (const SeriesPoint &pt : runs.back().series) {
            csv.row({runs.back().policy,
                     CsvWriter::num(pt.cycle / 1e6, 2),
                     CsvWriter::num(pt.costRate, 5),
                     CsvWriter::num(pt.qos, 4)});
        }
    }

    // Downsampled time-series table.
    std::printf("%-10s", "Mcycles");
    for (const RunOutput &r : runs)
        std::printf("  %10s$/hr %9sQoS", r.policy.c_str(),
                    r.policy.c_str());
    std::printf("\n");
    std::size_t points = runs[0].series.size();
    for (std::size_t i = 0; i < points; i += 4) {
        std::printf("%-10.0f",
                    runs[0].series[i].cycle / 1e6);
        for (const RunOutput &r : runs) {
            const SeriesPoint &pt =
                r.series[std::min(i, r.series.size() - 1)];
            std::printf("  %13.4f  %9.3f", pt.costRate, pt.qos);
        }
        std::printf("\n");
    }

    std::printf("\n%-12s %12s %10s %12s\n", "policy", "rate $/hr",
                "viol %", "vs optimal");
    double optimal_rate = runs[0].stats.cost
        / (static_cast<double>(runs[0].stats.cycles) / 1e9 / 3600);
    for (const RunOutput &r : runs) {
        double rate = r.stats.cost
            / (static_cast<double>(r.stats.cycles) / 1e9 / 3600);
        std::printf("%-12s %12.4f %10.1f %11.2fx\n",
                    r.policy.c_str(), rate,
                    r.stats.violationPct(), rate / optimal_rate);
    }
    std::printf("\npaper reference: race-to-idle and convex "
                "optimization both exceed 4.5x optimal cost on "
                "x264; convex also violates QoS repeatedly.\n");
    return 0;
}
