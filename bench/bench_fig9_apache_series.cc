/**
 * @file
 * Paper Fig 9: apache under an oscillating request stream —
 * request rate, cost rate, and normalized request latency over
 * time for ConvexOpt, Race-to-idle and CASH.
 *
 * The paper's narrative: every method tracks the load, race-to-idle
 * is most expensive because it reserves worst-case resources the
 * whole time, and the adaptive approaches provision "just right".
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"

using namespace cash;

int
main()
{
    ConfigSpace space;
    CostModel cost;
    ExperimentParams ep = bench::benchParams(/*request=*/true);
    const AppModel &app = appByName("apache");
    AppProfile prof = characterize(app, space, ep.fabric, ep.sim,
                                   bench::benchProfile());

    std::printf("=== Fig 9: time series for apache ===\n");
    std::printf("QoS target: %.0f cycles/request (paper: 110K "
                "cycles/request at its scale)\n\n", prof.qosTarget);

    bench::CsvSink csv("fig9_apache",
                       {"policy", "mcycles", "req_rate",
                        "cost_rate", "qos"});

    std::vector<RunOutput> runs;
    for (PolicyKind k : {PolicyKind::ConvexOpt,
                         PolicyKind::RaceToIdle, PolicyKind::Cash}) {
        runs.push_back(runPolicy(app, prof, k, space, cost, ep));
    }

    auto rate_at = [&](Cycle t) {
        double phase = 2.0 * M_PI
            * static_cast<double>(t % app.request.period)
            / static_cast<double>(app.request.period);
        return app.request.baseRatePerMcycle
            * (1.0 + app.request.amplitude * std::sin(phase));
    };

    std::printf("%-9s %9s", "Mcycles", "req/Mc");
    for (const RunOutput &r : runs)
        std::printf(" %9s$/hr %7sQoS", r.policy.c_str(),
                    r.policy.c_str());
    std::printf("\n");
    std::size_t points = runs[2].series.size();
    for (std::size_t i = 0; i < points; i += 4) {
        Cycle t = runs[2].series[i].cycle;
        std::printf("%-9.0f %9.1f", t / 1e6, rate_at(t));
        for (const RunOutput &r : runs) {
            const SeriesPoint &pt =
                r.series[std::min(i, r.series.size() - 1)];
            std::printf(" %12.4f %10.3f", pt.costRate, pt.qos);
            csv.row({r.policy, CsvWriter::num(t / 1e6, 2),
                     CsvWriter::num(rate_at(t), 2),
                     CsvWriter::num(pt.costRate, 5),
                     CsvWriter::num(pt.qos, 4)});
        }
        std::printf("\n");
    }

    std::printf("\nsummary:\n");
    double convex_rate = 0;
    for (const RunOutput &r : runs) {
        double hours =
            static_cast<double>(r.stats.cycles) / 1e9 / 3600.0;
        double rate = r.stats.cost / hours;
        if (r.policy == "ConvexOpt")
            convex_rate = rate;
        std::printf("  %-11s rate $%.4f/hr, violations %.1f%%, "
                    "mean normalized latency QoS %.3f\n",
                    r.policy.c_str(), rate,
                    r.stats.violationPct(), r.stats.meanQos());
    }
    if (convex_rate > 0) {
        double cash_rate = runs[2].stats.cost
            / (static_cast<double>(runs[2].stats.cycles) / 1e9
               / 3600.0);
        std::printf("\nCASH vs convex cost: %+.1f%% "
                    "(paper: about -18%%)\n",
                    100.0 * (cash_rate / convex_rate - 1.0));
    }
    return 0;
}
