/**
 * @file
 * Paper Fig 9: apache under an oscillating request stream —
 * request rate, cost rate, and normalized request latency over
 * time for ConvexOpt, Race-to-idle and CASH, run as parallel
 * engine cells over one shared characterization.
 *
 * The paper's narrative: every method tracks the load, race-to-idle
 * is most expensive because it reserves worst-case resources the
 * whole time, and the adaptive approaches provision "just right".
 */

#include <cmath>
#include <cstdio>

#include "bench_util.hh"

using namespace cash;

int
main(int argc, char **argv)
{
    bench::TraceOptions trace_opts(argc, argv);
    ConfigSpace space;
    CostModel cost;
    ExperimentParams ep = bench::benchParams(/*request=*/true);
    const AppModel &app = appByName("apache");

    harness::ExperimentEngine engine;
    std::vector<harness::EvalSpec> specs;
    for (PolicyKind k : {PolicyKind::ConvexOpt,
                         PolicyKind::RaceToIdle, PolicyKind::Cash})
        specs.push_back({"", app, k, &space, ep});
    std::vector<harness::EvalResult> runs = harness::runEvalGrid(
        engine, specs, cost, bench::benchProfile());

    std::printf("=== Fig 9: time series for apache ===\n");
    std::printf("QoS target: %.0f cycles/request (paper: 110K "
                "cycles/request at its scale)\n\n",
                runs[0].profile.qosTarget);

    bench::CsvSink csv("fig9_apache",
                       {"policy", "mcycles", "req_rate",
                        "cost_rate", "qos"});

    auto rate_at = [&](Cycle t) {
        double phase = 2.0 * M_PI
            * static_cast<double>(t % app.request.period)
            / static_cast<double>(app.request.period);
        return app.request.baseRatePerMcycle
            * (1.0 + app.request.amplitude * std::sin(phase));
    };

    std::printf("%-9s %9s", "Mcycles", "req/Mc");
    for (const harness::EvalResult &r : runs)
        std::printf(" %9s$/hr %7sQoS", r.out.policy.c_str(),
                    r.out.policy.c_str());
    std::printf("\n");
    std::size_t points = runs[2].out.series.size();
    for (std::size_t i = 0; i < points; i += 4) {
        Cycle t = runs[2].out.series[i].cycle;
        std::printf("%-9.0f %9.1f", t / 1e6, rate_at(t));
        for (const harness::EvalResult &r : runs) {
            const SeriesPoint &pt =
                r.out.series[std::min(i, r.out.series.size() - 1)];
            std::printf(" %12.4f %10.3f", pt.costRate, pt.qos);
            csv.row({r.out.policy, CsvWriter::num(t / 1e6, 2),
                     CsvWriter::num(rate_at(t), 2),
                     CsvWriter::num(pt.costRate, 5),
                     CsvWriter::num(pt.qos, 4)});
        }
        std::printf("\n");
    }

    std::printf("\nsummary:\n");
    double convex_rate = 0;
    for (const harness::EvalResult &r : runs) {
        if (r.out.policy == "ConvexOpt")
            convex_rate = r.costRate;
        std::printf("  %-11s rate $%.4f/hr, violations %.1f%%, "
                    "mean normalized latency QoS %.3f\n",
                    r.out.policy.c_str(), r.costRate,
                    r.out.stats.violationPct(),
                    r.out.stats.meanQos());
    }
    if (convex_rate > 0) {
        double cash_rate = runs[2].costRate;
        std::printf("\nCASH vs convex cost: %+.1f%% "
                    "(paper: about -18%%)\n",
                    100.0 * (cash_rate / convex_rate - 1.0));
    }
    bench::finishBench(engine, "fig9_apache");
    return 0;
}
