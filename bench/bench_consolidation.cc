/**
 * @file
 * Multi-tenant consolidation: the provider economics of Secs I and
 * VI-B, measured end-to-end through the cloud layer.
 *
 * One cell per (chip size, arrival load, provisioning scheme):
 * a CloudProvider runs its seeded arrival/departure process for a
 * fixed number of rounds under
 *   fine-grain   — CASH tenancy (admit at minimum config, private
 *                  CashRuntime per tenant, fabric arbitration),
 *   static-peak  — each tenant reserves its declared peak,
 *   coarse-grain — big.LITTLE reservation,
 *   joint        — fine-grain tenancy with DVFS as a second runtime
 *                  knob (tiles x frequency, SET_FREQ via the gate).
 * Every provider is a pure function of its parameters, so the cells
 * fan out through ExperimentEngine and the output is byte-identical
 * at any CASH_BENCH_THREADS.
 *
 * Reported per cell: hosted tenant-rounds, admissions vs
 * rejections, SLA delivery, revenue at the paper's tile prices
 * ($0.0098/Slice-hr + $0.0032/bank-hr), dissipated joules with the
 * metered energy line item, and chip occupancy. Two headlines: the
 * CASH-vs-static-peak consolidation ratio (the paper's Sec VI-B 56%
 * customer cost cut comes from packing more tenants per chip at the
 * same delivered QoS), and a cost x QoS x energy Pareto comparison
 * of joint (tiles x frequency) control against tile-only CASH.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "cloud/provider.hh"
#include "common/stats.hh"

using namespace cash;
using cloud::CloudProvider;
using cloud::Provisioning;

namespace
{

struct ChipSpec
{
    const char *name;
    FabricParams fabric;
};

struct CellResult
{
    std::uint64_t tenantRounds = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t departed = 0;
    double qos = 0.0;
    double revenue = 0.0;
    double joules = 0.0;
    double energyRevenue = 0.0;
    double sliceUtil = 0.0;
    double bankUtil = 0.0;

    /** Customer cost of one hosted tenant-round, tiles + energy. */
    double costPerRound() const
    {
        if (tenantRounds == 0)
            return 0.0;
        return (revenue + energyRevenue)
            / static_cast<double>(tenantRounds);
    }

    /** Tenant-attributed joules per hosted tenant-round. */
    double joulesPerRound() const
    {
        if (tenantRounds == 0)
            return 0.0;
        return joules / static_cast<double>(tenantRounds);
    }
};

/** A provisioning scheme plus the runtime's knob set: `joint` is
 *  fine-grain tenancy with DVFS enabled, so its learners trade
 *  SHRINK against downclock per quantum. */
struct SchemeSpec
{
    const char *name;
    Provisioning prov;
    bool dvfs;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::TraceOptions trace_opts(argc, argv);
    // Two chip sizes spanning the consolidation pressure range: the
    // small chip fits only a couple of peak reservations, the large
    // one shows the packing gap at scale.
    ChipSpec chips[] = {
        {"8S/32B", {1, 4, 8}},
        {"16S/64B", {2, 8, 8}},
    };
    const double loads[] = {0.35, 0.65, 0.95};
    const SchemeSpec schemes[] = {
        {"fine-grain", Provisioning::FineGrain, false},
        {"static-peak", Provisioning::StaticPeak, false},
        {"coarse-grain", Provisioning::CoarseGrain, false},
        {"joint", Provisioning::FineGrain, true},
    };
    const std::uint32_t rounds = bench::fastMode() ? 24 : 72;

    struct Point
    {
        std::size_t chip, load, scheme;
    };
    std::vector<Point> points;
    for (std::size_t c = 0; c < std::size(chips); ++c)
        for (std::size_t l = 0; l < std::size(loads); ++l)
            for (std::size_t s = 0; s < std::size(schemes); ++s)
                points.push_back({c, l, s});

    harness::ExperimentEngine engine;
    std::vector<CellResult> results = engine.map<CellResult>(
        points.size(),
        [&](std::size_t i) {
            const Point &pt = points[i];
            cloud::ProviderParams pp;
            pp.fabric = chips[pt.chip].fabric;
            pp.provisioning = schemes[pt.scheme].prov;
            pp.runtime.dvfs = schemes[pt.scheme].dvfs;
            pp.arrivalProb = loads[pt.load];
            // Bench-scale rounds: 2M-cycle quanta (the runtime's
            // learner needs them — at short quanta it hunts and
            // pays a reconfiguration stall every round) and an SLA
            // grace period covering its convergence ramp.
            pp.quantum = 2'000'000;
            pp.warmupRounds = 10;
            pp.meanResidenceRounds = 36.0;
            // Sell only the classes whose learned models are
            // stable at bench scale — the same applications fig7
            // reports at ~0% CASH violations. The marginal classes
            // (astar, lib, omnetpp) conflate runtime-learning
            // noise with the provisioning comparison.
            for (const cloud::TenantClass &cls :
                 cloud::defaultCatalog()) {
                if (cls.app == "astar" || cls.app == "lib"
                    || cls.app == "omnetpp")
                    continue;
                pp.catalog.push_back(cls);
            }
            // Same arrival stream for every scheme at a sweep
            // point: the schemes compete on identical demand.
            pp.seed = 0x5EED + 100 * pt.chip + pt.load;
            CloudProvider provider(pp);
            provider.run(rounds);
            CellResult r;
            const cloud::ProviderStats &st = provider.stats();
            r.tenantRounds = st.tenantRounds;
            r.admitted = st.admitted;
            r.rejected = st.rejected;
            r.abandoned = st.abandoned;
            r.departed = st.departed;
            r.qos = provider.qosDelivery();
            r.revenue = provider.revenue();
            r.joules = st.dissipatedJoules;
            r.energyRevenue = provider.energyRevenue();
            r.sliceUtil = st.meanSliceUtil();
            r.bankUtil = st.meanBankUtil();
            return r;
        },
        [&](std::size_t i) {
            const Point &pt = points[i];
            return harness::CellKey{
                chips[pt.chip].name, schemes[pt.scheme].name,
                pt.load, 0x5EED};
        });

    std::printf("=== Consolidation: tenants per chip under four "
                "provisioning schemes ===\n");
    std::printf("%u rounds, catalog-drawn tenants, tile prices "
                "$0.0098/Slice-hr + $0.0032/bank-hr, energy "
                "metered at $0.12/kWh\n",
                rounds);

    bench::CsvSink csv(
        "consolidation",
        {"chip", "load", "scheme", "tenant_rounds", "admitted",
         "rejected", "abandoned", "departed", "qos", "revenue_usd",
         "joules", "energy_usd", "slice_util", "bank_util"});

    auto at = [&](std::size_t c, std::size_t l,
                  std::size_t s) -> const CellResult & {
        return results[(c * std::size(loads) + l) * std::size(schemes)
                       + s];
    };

    for (std::size_t c = 0; c < std::size(chips); ++c) {
        std::printf("\nchip %s\n", chips[c].name);
        std::printf("  %-5s %-12s %8s %5s %5s %5s %6s %9s %8s %8s "
                    "%7s %6s\n",
                    "load", "scheme", "ten-rnd", "adm", "rej",
                    "dep", "QoS", "rev(u$)", "joules", "nrg(u$)",
                    "sliceU", "bankU");
        for (std::size_t l = 0; l < std::size(loads); ++l) {
            for (std::size_t s = 0; s < std::size(schemes); ++s) {
                const CellResult &r = at(c, l, s);
                const char *label = schemes[s].name;
                std::printf("  %-5.2f %-12s %8llu %5llu %5llu %5llu "
                            "%6.3f %9.5f %8.4f %8.5f %7.3f %6.3f\n",
                            loads[l], label,
                            static_cast<unsigned long long>(
                                r.tenantRounds),
                            static_cast<unsigned long long>(
                                r.admitted),
                            static_cast<unsigned long long>(
                                r.rejected + r.abandoned),
                            static_cast<unsigned long long>(
                                r.departed),
                            r.qos, r.revenue * 1e6, r.joules,
                            r.energyRevenue * 1e6, r.sliceUtil,
                            r.bankUtil);
                csv.row({chips[c].name, CsvWriter::num(loads[l], 2),
                         label,
                         std::to_string(r.tenantRounds),
                         std::to_string(r.admitted),
                         std::to_string(r.rejected),
                         std::to_string(r.abandoned),
                         std::to_string(r.departed),
                         CsvWriter::num(r.qos, 4),
                         CsvWriter::num(r.revenue, 6),
                         CsvWriter::num(r.joules, 6),
                         CsvWriter::num(r.energyRevenue, 9),
                         CsvWriter::num(r.sliceUtil, 4),
                         CsvWriter::num(r.bankUtil, 4)});
            }
        }
    }

    std::printf("\n--- CASH fine-grain vs static-peak ---\n");
    std::vector<double> host_ratios, cost_ratios;
    for (std::size_t c = 0; c < std::size(chips); ++c) {
        for (std::size_t l = 0; l < std::size(loads); ++l) {
            const CellResult &fg = at(c, l, 0);
            const CellResult &sp = at(c, l, 1);
            double hosted = static_cast<double>(fg.tenantRounds)
                / static_cast<double>(sp.tenantRounds);
            // What one hosted tenant-round costs its customer,
            // fine-grain relative to a peak reservation.
            double cost = (fg.revenue
                           / static_cast<double>(fg.tenantRounds))
                / (sp.revenue
                   / static_cast<double>(sp.tenantRounds));
            host_ratios.push_back(hosted);
            cost_ratios.push_back(cost);
            std::printf("  chip %-8s load %.2f: hosted %.2fx  "
                        "QoS %.3f vs %.3f  customer cost %.2fx\n",
                        chips[c].name, loads[l], hosted, fg.qos,
                        sp.qos, cost);
        }
    }
    std::printf("  geomean: hosted %.2fx, customer cost %.2fx\n",
                geomean(host_ratios), geomean(cost_ratios));
    std::printf("  reference: paper Sec VI-B reports a 56%% "
                "customer cost cut (0.44x) from sub-core\n"
                "  consolidation at equal delivered QoS; hosted "
                "ratio > 1x expected under load\n");

    // The DVFS payoff: per cell, compare joint (tiles x frequency)
    // control against tile-only CASH on the three axes a customer
    // cares about — $/tenant-round (tiles + energy), delivered QoS,
    // and joules/tenant-round. `joint` strictly dominates a cell
    // when it is no worse on every axis and better on at least one;
    // the energy model gives memory-bound tenants better IPC-per-Hz
    // at low frequency, so the learner finds downclock points that
    // tile-only control cannot express.
    std::printf("\n--- Pareto: joint (tiles x freq) vs tile-only "
                "CASH ---\n");
    std::printf("  %-8s %-5s %12s %14s %15s  %s\n", "chip", "load",
                "cost $/rnd", "QoS", "mJ/rnd", "verdict");
    std::uint32_t dominated = 0;
    for (std::size_t c = 0; c < std::size(chips); ++c) {
        for (std::size_t l = 0; l < std::size(loads); ++l) {
            const CellResult &fg = at(c, l, 0);
            const CellResult &jt = at(c, l, 3);
            bool no_worse = jt.costPerRound() <= fg.costPerRound()
                && jt.qos >= fg.qos
                && jt.joulesPerRound() <= fg.joulesPerRound();
            bool better = jt.costPerRound() < fg.costPerRound()
                || jt.qos > fg.qos
                || jt.joulesPerRound() < fg.joulesPerRound();
            bool dom = no_worse && better;
            dominated += dom ? 1 : 0;
            std::printf("  %-8s %-5.2f %5.3fu/%5.3fu %.4f/%.4f "
                        "%7.4f/%7.4f  %s\n",
                        chips[c].name, loads[l],
                        jt.costPerRound() * 1e6,
                        fg.costPerRound() * 1e6, jt.qos, fg.qos,
                        jt.joulesPerRound() * 1e3,
                        fg.joulesPerRound() * 1e3,
                        dom ? "joint dominates" : "incomparable");
        }
    }
    std::printf("  joint strictly dominates tile-only CASH on "
                "%u/%zu cells (cost x QoS x energy)\n",
                dominated, std::size(chips) * std::size(loads));
    if (dominated == 0) {
        std::fprintf(stderr,
                     "FAIL: joint (tiles x frequency) control "
                     "dominates no cell — DVFS is not paying for "
                     "itself\n");
        return 1;
    }

    bench::finishBench(engine, "consolidation");
    return 0;
}
