/**
 * @file
 * Multi-tenant consolidation: the provider economics of Secs I and
 * VI-B, measured end-to-end through the cloud layer.
 *
 * One cell per (chip size, arrival load, provisioning scheme):
 * a CloudProvider runs its seeded arrival/departure process for a
 * fixed number of rounds under
 *   fine-grain   — CASH tenancy (admit at minimum config, private
 *                  CashRuntime per tenant, fabric arbitration),
 *   static-peak  — each tenant reserves its declared peak,
 *   coarse-grain — big.LITTLE reservation.
 * Every provider is a pure function of its parameters, so the cells
 * fan out through ExperimentEngine and the output is byte-identical
 * at any CASH_BENCH_THREADS.
 *
 * Reported per cell: hosted tenant-rounds, admissions vs
 * rejections, SLA delivery, revenue at the paper's tile prices
 * ($0.0098/Slice-hr + $0.0032/bank-hr), and chip occupancy. The
 * headline is the CASH-vs-static-peak consolidation ratio: the
 * paper (Sec VI-B) funds its 56% customer cost reduction by packing
 * more tenants per chip at the same delivered QoS.
 */

#include <cstdio>
#include <vector>

#include "bench_util.hh"
#include "cloud/provider.hh"
#include "common/stats.hh"

using namespace cash;
using cloud::CloudProvider;
using cloud::Provisioning;

namespace
{

struct ChipSpec
{
    const char *name;
    FabricParams fabric;
};

struct CellResult
{
    std::uint64_t tenantRounds = 0;
    std::uint64_t admitted = 0;
    std::uint64_t rejected = 0;
    std::uint64_t abandoned = 0;
    std::uint64_t departed = 0;
    double qos = 0.0;
    double revenue = 0.0;
    double sliceUtil = 0.0;
    double bankUtil = 0.0;
};

} // namespace

int
main(int argc, char **argv)
{
    bench::TraceOptions trace_opts(argc, argv);
    // Two chip sizes spanning the consolidation pressure range: the
    // small chip fits only a couple of peak reservations, the large
    // one shows the packing gap at scale.
    ChipSpec chips[] = {
        {"8S/32B", {1, 4, 8}},
        {"16S/64B", {2, 8, 8}},
    };
    const double loads[] = {0.35, 0.65, 0.95};
    const Provisioning schemes[] = {
        Provisioning::FineGrain,
        Provisioning::StaticPeak,
        Provisioning::CoarseGrain,
    };
    const std::uint32_t rounds = bench::fastMode() ? 24 : 72;

    struct Point
    {
        std::size_t chip, load, scheme;
    };
    std::vector<Point> points;
    for (std::size_t c = 0; c < std::size(chips); ++c)
        for (std::size_t l = 0; l < std::size(loads); ++l)
            for (std::size_t s = 0; s < std::size(schemes); ++s)
                points.push_back({c, l, s});

    harness::ExperimentEngine engine;
    std::vector<CellResult> results = engine.map<CellResult>(
        points.size(),
        [&](std::size_t i) {
            const Point &pt = points[i];
            cloud::ProviderParams pp;
            pp.fabric = chips[pt.chip].fabric;
            pp.provisioning = schemes[pt.scheme];
            pp.arrivalProb = loads[pt.load];
            // Bench-scale rounds: 2M-cycle quanta (the runtime's
            // learner needs them — at short quanta it hunts and
            // pays a reconfiguration stall every round) and an SLA
            // grace period covering its convergence ramp.
            pp.quantum = 2'000'000;
            pp.warmupRounds = 10;
            pp.meanResidenceRounds = 36.0;
            // Sell only the classes whose learned models are
            // stable at bench scale — the same applications fig7
            // reports at ~0% CASH violations. The marginal classes
            // (astar, lib, omnetpp) conflate runtime-learning
            // noise with the provisioning comparison.
            for (const cloud::TenantClass &cls :
                 cloud::defaultCatalog()) {
                if (cls.app == "astar" || cls.app == "lib"
                    || cls.app == "omnetpp")
                    continue;
                pp.catalog.push_back(cls);
            }
            // Same arrival stream for every scheme at a sweep
            // point: the schemes compete on identical demand.
            pp.seed = 0x5EED + 100 * pt.chip + pt.load;
            CloudProvider provider(pp);
            provider.run(rounds);
            CellResult r;
            const cloud::ProviderStats &st = provider.stats();
            r.tenantRounds = st.tenantRounds;
            r.admitted = st.admitted;
            r.rejected = st.rejected;
            r.abandoned = st.abandoned;
            r.departed = st.departed;
            r.qos = provider.qosDelivery();
            r.revenue = provider.revenue();
            r.sliceUtil = st.meanSliceUtil();
            r.bankUtil = st.meanBankUtil();
            return r;
        },
        [&](std::size_t i) {
            const Point &pt = points[i];
            return harness::CellKey{
                chips[pt.chip].name,
                cloud::provisioningName(schemes[pt.scheme]),
                pt.load, 0x5EED};
        });

    std::printf("=== Consolidation: tenants per chip under three "
                "provisioning schemes ===\n");
    std::printf("%u rounds, catalog-drawn tenants, tile prices "
                "$0.0098/Slice-hr + $0.0032/bank-hr\n",
                rounds);

    bench::CsvSink csv(
        "consolidation",
        {"chip", "load", "scheme", "tenant_rounds", "admitted",
         "rejected", "abandoned", "departed", "qos", "revenue_usd",
         "slice_util", "bank_util"});

    auto at = [&](std::size_t c, std::size_t l,
                  std::size_t s) -> const CellResult & {
        return results[(c * std::size(loads) + l) * std::size(schemes)
                       + s];
    };

    for (std::size_t c = 0; c < std::size(chips); ++c) {
        std::printf("\nchip %s\n", chips[c].name);
        std::printf("  %-5s %-12s %8s %5s %5s %5s %6s %9s %7s "
                    "%6s\n",
                    "load", "scheme", "ten-rnd", "adm", "rej",
                    "dep", "QoS", "rev(u$)", "sliceU", "bankU");
        for (std::size_t l = 0; l < std::size(loads); ++l) {
            for (std::size_t s = 0; s < std::size(schemes); ++s) {
                const CellResult &r = at(c, l, s);
                const char *label =
                    cloud::provisioningName(schemes[s]);
                std::printf("  %-5.2f %-12s %8llu %5llu %5llu %5llu "
                            "%6.3f %9.5f %7.3f %6.3f\n",
                            loads[l], label,
                            static_cast<unsigned long long>(
                                r.tenantRounds),
                            static_cast<unsigned long long>(
                                r.admitted),
                            static_cast<unsigned long long>(
                                r.rejected + r.abandoned),
                            static_cast<unsigned long long>(
                                r.departed),
                            r.qos, r.revenue * 1e6, r.sliceUtil,
                            r.bankUtil);
                csv.row({chips[c].name, CsvWriter::num(loads[l], 2),
                         label,
                         std::to_string(r.tenantRounds),
                         std::to_string(r.admitted),
                         std::to_string(r.rejected),
                         std::to_string(r.abandoned),
                         std::to_string(r.departed),
                         CsvWriter::num(r.qos, 4),
                         CsvWriter::num(r.revenue, 6),
                         CsvWriter::num(r.sliceUtil, 4),
                         CsvWriter::num(r.bankUtil, 4)});
            }
        }
    }

    std::printf("\n--- CASH fine-grain vs static-peak ---\n");
    std::vector<double> host_ratios, cost_ratios;
    for (std::size_t c = 0; c < std::size(chips); ++c) {
        for (std::size_t l = 0; l < std::size(loads); ++l) {
            const CellResult &fg = at(c, l, 0);
            const CellResult &sp = at(c, l, 1);
            double hosted = static_cast<double>(fg.tenantRounds)
                / static_cast<double>(sp.tenantRounds);
            // What one hosted tenant-round costs its customer,
            // fine-grain relative to a peak reservation.
            double cost = (fg.revenue
                           / static_cast<double>(fg.tenantRounds))
                / (sp.revenue
                   / static_cast<double>(sp.tenantRounds));
            host_ratios.push_back(hosted);
            cost_ratios.push_back(cost);
            std::printf("  chip %-8s load %.2f: hosted %.2fx  "
                        "QoS %.3f vs %.3f  customer cost %.2fx\n",
                        chips[c].name, loads[l], hosted, fg.qos,
                        sp.qos, cost);
        }
    }
    std::printf("  geomean: hosted %.2fx, customer cost %.2fx\n",
                geomean(host_ratios), geomean(cost_ratios));
    std::printf("  reference: paper Sec VI-B reports a 56%% "
                "customer cost cut (0.44x) from sub-core\n"
                "  consolidation at equal delivered QoS; hosted "
                "ratio > 1x expected under load\n");

    bench::finishBench(engine, "consolidation");
    return 0;
}
