/**
 * @file
 * google-benchmark measurement of SSim's simulation throughput
 * across virtual-core sizes — the practical budget behind the
 * oracle's exhaustive sweeps. Each iteration advances the vcore by
 * a fixed 100K-cycle window on a looping x264 stream;
 * items_per_second reports simulated instructions per host second.
 * BM_SimulateSampled runs the same grid under SimMode::Sampled
 * (sim/sampler.hh), so the committed BENCH_sim_speed.json baseline
 * records the sampled-mode speedup next to the full-detail rows.
 *
 * One extra mode, outside google-benchmark:
 *
 *   bench_sim_speed --sampled-error
 *
 * runs every figure workload (workload/apps.hh, the paper's Fig 7
 * set) both full and sampled, measuring cycles-to-commit-N as the
 * runtime estimate, and FAILS (exit 1) unless geomean estimate
 * error <= 3%, per-workload error <= 5%, and geomean host-time
 * speedup >= 5x. tools/sample_error_gate.sh runs this in CI; the
 * bounds are the repo's sampling-accuracy contract (DESIGN.md §12).
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "baselines/experiment.hh"
#include "sim/ssim.hh"
#include "workload/apps.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

void
BM_SimulateInstructions(benchmark::State &state)
{
    auto slices = static_cast<std::uint32_t>(state.range(0));
    auto banks = static_cast<std::uint32_t>(state.range(1));
    SSim sim;
    auto id = *sim.createVCore(slices, banks);
    const AppModel &app = appByName("x264");
    PhasedTraceSource src(app.phases, 11, true, 0);
    sim.vcore(id).bindSource(&src);
    InstCount done = 0;
    for (auto _ : state) {
        InstCount before = sim.vcore(id).meta().totalCommitted;
        sim.vcore(id).runUntil(sim.vcore(id).now() + 100'000);
        done += sim.vcore(id).meta().totalCommitted - before;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(done));
}
BENCHMARK(BM_SimulateInstructions)
    ->Args({1, 1})
    ->Args({2, 4})
    ->Args({4, 16})
    ->Args({8, 64})
    ->Unit(benchmark::kMillisecond);

void
BM_SimulateSampled(benchmark::State &state)
{
    // Same measurement as BM_SimulateInstructions with slice
    // sampling on: the items_per_second ratio between the two rows
    // IS the sampled-mode speedup the baseline records.
    auto slices = static_cast<std::uint32_t>(state.range(0));
    auto banks = static_cast<std::uint32_t>(state.range(1));
    SSim sim;
    sim.setSampling(SimMode::Sampled);
    auto id = *sim.createVCore(slices, banks);
    const AppModel &app = appByName("x264");
    PhasedTraceSource src(app.phases, 11, true, 0);
    sim.vcore(id).bindSource(&src);
    InstCount done = 0;
    for (auto _ : state) {
        InstCount before = sim.vcore(id).meta().totalCommitted;
        sim.vcore(id).runUntil(sim.vcore(id).now() + 100'000);
        done += sim.vcore(id).meta().totalCommitted - before;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(done));
}
BENCHMARK(BM_SimulateSampled)
    ->Args({1, 1})
    ->Args({2, 4})
    ->Args({4, 16})
    ->Args({8, 64})
    ->Unit(benchmark::kMillisecond);

void
BM_Reconfiguration(benchmark::State &state)
{
    // Host cost of an EXPAND/SHRINK round trip (allocator + vcore
    // rebuild + L2 remap).
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    const AppModel &app = appByName("gcc");
    PhasedTraceSource src(app.phases, 3, true, 0);
    sim.vcore(id).bindSource(&src);
    bool big = false;
    for (auto _ : state) {
        big = !big;
        auto cost = sim.command(id, big ? 4 : 1, big ? 8 : 1);
        benchmark::DoNotOptimize(cost);
        sim.vcore(id).runUntil(sim.vcore(id).now() + 2'000);
    }
}
BENCHMARK(BM_Reconfiguration)->Unit(benchmark::kMicrosecond);

// ---------------------------------------------------------------
// --sampled-error: the full-vs-sampled error-bound harness.
// ---------------------------------------------------------------

/** The certified bounds (also quoted in DESIGN.md §12). */
constexpr double kGeomeanErrorBound = 0.03;
constexpr double kPerWorkloadErrorBound = 0.05;
constexpr double kGeomeanSpeedupBound = 5.0;

/** Instructions whose runtime each estimate covers. */
constexpr InstCount kHarnessInsts = 8'000'000;

/** Phase-length multiplier for throughput apps — the experiment
 *  scale (ExperimentParams::phaseScale): the app models define
 *  short phases and every consumer stretches them to multi-quantum
 *  timescales. The gate certifies sampling at that scale; raw
 *  phases change too fast for slice sampling to pay off (the
 *  sampler detects every boundary and reverts to detail — correct,
 *  but with nothing left to fast-forward). */
constexpr double kHarnessPhaseScale = 8.0;

struct HarnessRun
{
    /** Estimated cycles to commit kHarnessInsts (interpolated at
     *  the crossing, so window granularity cancels). */
    double cycles = 0.0;
    /** Host seconds the run took. */
    double wallSeconds = 0.0;
};

HarnessRun
cyclesToCommit(const AppModel &app, SimMode mode)
{
    SSim sim;
    if (mode == SimMode::Sampled)
        sim.setSampling(SimMode::Sampled);
    auto id = *sim.createVCore(2, 8);
    VirtualCore &vc = sim.vcore(id);
    AppModel scaled = app.isRequestDriven()
        ? app
        : scalePhases(app, kHarnessPhaseScale);
    auto src = makeSource(scaled);
    vc.bindSource(src.get());

    auto t0 = std::chrono::steady_clock::now();
    HarnessRun run;
    Cycle prev_clock = 0;
    InstCount prev_done = 0;
    for (;;) {
        RunResult r = vc.runUntil(vc.now() + 50'000);
        InstCount done = vc.meta().totalCommitted;
        Cycle clock = vc.now();
        if (done >= kHarnessInsts) {
            // Linear interpolation inside the crossing window
            // removes the window/quantum quantization that would
            // otherwise dominate the comparison.
            double span = static_cast<double>(done - prev_done);
            double frac = span > 0.0
                ? static_cast<double>(kHarnessInsts - prev_done)
                    / span
                : 1.0;
            run.cycles = static_cast<double>(prev_clock)
                + frac * static_cast<double>(clock - prev_clock);
            break;
        }
        if (r.finished) {
            run.cycles = static_cast<double>(clock);
            break;
        }
        prev_clock = clock;
        prev_done = done;
    }
    run.wallSeconds = std::chrono::duration<double>(
        std::chrono::steady_clock::now() - t0).count();
    return run;
}

int
runSampledErrorHarness()
{
    const std::vector<AppModel> &apps = allApps();
    std::printf("sampled-error harness: %zu figure workloads, "
                "cycles to commit %llu insts, full vs sampled\n",
                apps.size(),
                static_cast<unsigned long long>(kHarnessInsts));
    std::printf("%-12s %14s %14s %8s %9s\n", "app", "full_cycles",
                "sampled_cycles", "err%", "speedup");

    double log_err_sum = 0.0;
    double log_speedup_sum = 0.0;
    double max_err = 0.0;
    std::string max_err_app;
    for (const AppModel &app : apps) {
        HarnessRun full = cyclesToCommit(app, SimMode::Full);
        HarnessRun sampled = cyclesToCommit(app, SimMode::Sampled);
        double err = std::fabs(sampled.cycles - full.cycles)
            / full.cycles;
        double speedup = sampled.wallSeconds > 0.0
            ? full.wallSeconds / sampled.wallSeconds : 1.0;
        std::printf("%-12s %14.0f %14.0f %8.2f %8.1fx\n",
                    app.name.c_str(), full.cycles, sampled.cycles,
                    err * 100.0, speedup);
        // Floor the per-app error for the geomean: a (near-)exact
        // workload should help the aggregate, not collapse it to 0.
        log_err_sum += std::log(std::max(err, 1e-6));
        log_speedup_sum += std::log(std::max(speedup, 1e-6));
        if (err > max_err) {
            max_err = err;
            max_err_app = app.name;
        }
    }
    auto n = static_cast<double>(apps.size());
    double geo_err = std::exp(log_err_sum / n);
    double geo_speedup = std::exp(log_speedup_sum / n);

    std::printf("geomean error %.2f%% (bound %.0f%%), max error "
                "%.2f%% on %s (bound %.0f%%), geomean speedup "
                "%.1fx (bound %.0fx)\n",
                geo_err * 100.0, kGeomeanErrorBound * 100.0,
                max_err * 100.0, max_err_app.c_str(),
                kPerWorkloadErrorBound * 100.0, geo_speedup,
                kGeomeanSpeedupBound);

    bool ok = geo_err <= kGeomeanErrorBound
        && max_err <= kPerWorkloadErrorBound
        && geo_speedup >= kGeomeanSpeedupBound;
    std::printf("sampled-error harness: %s\n",
                ok ? "PASS" : "FAIL");
    return ok ? 0 : 1;
}

} // namespace
} // namespace cash

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--sampled-error"))
            return cash::runSampledErrorHarness();
    }
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
