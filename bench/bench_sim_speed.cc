/**
 * @file
 * google-benchmark measurement of SSim's simulation throughput
 * across virtual-core sizes — the practical budget behind the
 * oracle's exhaustive sweeps. Each iteration advances the vcore by
 * a fixed 100K-cycle window on a looping x264 stream;
 * items_per_second reports simulated instructions per host second.
 */

#include <benchmark/benchmark.h>

#include "sim/ssim.hh"
#include "workload/apps.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

void
BM_SimulateInstructions(benchmark::State &state)
{
    auto slices = static_cast<std::uint32_t>(state.range(0));
    auto banks = static_cast<std::uint32_t>(state.range(1));
    SSim sim;
    auto id = *sim.createVCore(slices, banks);
    const AppModel &app = appByName("x264");
    PhasedTraceSource src(app.phases, 11, true, 0);
    sim.vcore(id).bindSource(&src);
    InstCount done = 0;
    for (auto _ : state) {
        InstCount before = sim.vcore(id).meta().totalCommitted;
        sim.vcore(id).runUntil(sim.vcore(id).now() + 100'000);
        done += sim.vcore(id).meta().totalCommitted - before;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(done));
}
BENCHMARK(BM_SimulateInstructions)
    ->Args({1, 1})
    ->Args({2, 4})
    ->Args({4, 16})
    ->Args({8, 64})
    ->Unit(benchmark::kMillisecond);

void
BM_Reconfiguration(benchmark::State &state)
{
    // Host cost of an EXPAND/SHRINK round trip (allocator + vcore
    // rebuild + L2 remap).
    SSim sim;
    auto id = *sim.createVCore(1, 1);
    const AppModel &app = appByName("gcc");
    PhasedTraceSource src(app.phases, 3, true, 0);
    sim.vcore(id).bindSource(&src);
    bool big = false;
    for (auto _ : state) {
        big = !big;
        auto cost = sim.command(id, big ? 4 : 1, big ? 8 : 1);
        benchmark::DoNotOptimize(cost);
        sim.vcore(id).runUntil(sim.vcore(id).now() + 2'000);
    }
}
BENCHMARK(BM_Reconfiguration)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace cash

BENCHMARK_MAIN();
