/**
 * @file
 * Paper Fig 8: time-series behaviour on x264 — ConvexOpt vs
 * Race-to-idle vs CASH cost rate and normalized performance.
 *
 * The three runs are engine cells sharing one characterization.
 * The paper's narrative: around phase 3 the true optimum is
 * expensive; convex optimization reaches it but then stays in the
 * costly configuration, while CASH detects the phase change and
 * releases the resources.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cash;

int
main(int argc, char **argv)
{
    bench::TraceOptions trace_opts(argc, argv);
    ConfigSpace space;
    CostModel cost;
    ExperimentParams ep = bench::seriesParams();
    AppModel app = harness::prepareApp(appByName("x264"), ep);

    harness::ExperimentEngine engine;
    std::vector<harness::EvalSpec> specs;
    for (PolicyKind k : {PolicyKind::ConvexOpt,
                         PolicyKind::RaceToIdle, PolicyKind::Cash})
        specs.push_back({"", app, k, &space, ep});
    std::vector<harness::EvalResult> runs = harness::runEvalGrid(
        engine, specs, cost, bench::benchProfile());

    std::printf("=== Fig 8: time series for x264 (target %.4f "
                "IPC) ===\n\n", runs[0].profile.qosTarget);

    bench::CsvSink csv("fig8_x264",
                       {"policy", "mcycles", "cost_rate", "qos",
                        "config"});
    for (const harness::EvalResult &r : runs) {
        for (const SeriesPoint &pt : r.out.series) {
            csv.row({r.out.policy,
                     CsvWriter::num(pt.cycle / 1e6, 2),
                     CsvWriter::num(pt.costRate, 5),
                     CsvWriter::num(pt.qos, 4),
                     space.at(pt.config).str()});
        }
    }

    std::printf("%-9s", "Mcycles");
    for (const harness::EvalResult &r : runs)
        std::printf(" %9s$/hr %7sQoS %10scfg", r.out.policy.c_str(),
                    r.out.policy.c_str(), r.out.policy.c_str());
    std::printf("\n");
    std::size_t points = runs[2].out.series.size();
    for (std::size_t i = 0; i < points; i += 3) {
        std::printf("%-9.0f", runs[2].out.series[i].cycle / 1e6);
        for (const harness::EvalResult &r : runs) {
            const SeriesPoint &pt =
                r.out.series[std::min(i, r.out.series.size() - 1)];
            std::printf(" %12.4f %10.3f %13s", pt.costRate, pt.qos,
                        space.at(pt.config).str().c_str());
        }
        std::printf("\n");
    }

    std::printf("\nsummary:\n");
    for (const harness::EvalResult &r : runs) {
        std::printf("  %-11s rate $%.4f/hr, violations %.1f%%, "
                    "reconfigs %u\n",
                    r.out.policy.c_str(), r.costRate,
                    r.out.stats.violationPct(),
                    r.out.stats.reconfigs);
    }
    std::printf("\npaper reference: CASH tracks phases and "
                "releases the expensive phase-3 configuration; "
                "convex stays stuck in it until ~144 Mcycles.\n");
    bench::finishBench(engine, "fig8_x264");
    return 0;
}
