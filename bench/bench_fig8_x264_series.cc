/**
 * @file
 * Paper Fig 8: time-series behaviour on x264 — ConvexOpt vs
 * Race-to-idle vs CASH cost rate and normalized performance.
 *
 * The paper's narrative: around phase 3 the true optimum is
 * expensive; convex optimization reaches it but then stays in the
 * costly configuration, while CASH detects the phase change and
 * releases the resources.
 */

#include <cstdio>

#include "bench_util.hh"

using namespace cash;

int
main()
{
    ConfigSpace space;
    CostModel cost;
    ExperimentParams ep = bench::seriesParams();
    AppModel app = scalePhases(appByName("x264"), ep.phaseScale);
    AppProfile prof = characterize(app, space, ep.fabric, ep.sim,
                                   bench::benchProfile());

    std::printf("=== Fig 8: time series for x264 (target %.4f "
                "IPC) ===\n\n", prof.qosTarget);

    bench::CsvSink csv("fig8_x264",
                       {"policy", "mcycles", "cost_rate", "qos",
                        "config"});

    std::vector<RunOutput> runs;
    for (PolicyKind k : {PolicyKind::ConvexOpt,
                         PolicyKind::RaceToIdle, PolicyKind::Cash}) {
        runs.push_back(runPolicy(app, prof, k, space, cost, ep));
        for (const SeriesPoint &pt : runs.back().series) {
            csv.row({runs.back().policy,
                     CsvWriter::num(pt.cycle / 1e6, 2),
                     CsvWriter::num(pt.costRate, 5),
                     CsvWriter::num(pt.qos, 4),
                     space.at(pt.config).str()});
        }
    }

    std::printf("%-9s", "Mcycles");
    for (const RunOutput &r : runs)
        std::printf(" %9s$/hr %7sQoS %10scfg", r.policy.c_str(),
                    r.policy.c_str(), r.policy.c_str());
    std::printf("\n");
    std::size_t points = runs[2].series.size();
    for (std::size_t i = 0; i < points; i += 3) {
        std::printf("%-9.0f", runs[2].series[i].cycle / 1e6);
        for (const RunOutput &r : runs) {
            const SeriesPoint &pt =
                r.series[std::min(i, r.series.size() - 1)];
            std::printf(" %12.4f %10.3f %13s", pt.costRate, pt.qos,
                        space.at(pt.config).str().c_str());
        }
        std::printf("\n");
    }

    std::printf("\nsummary:\n");
    for (const RunOutput &r : runs) {
        double hours =
            static_cast<double>(r.stats.cycles) / 1e9 / 3600.0;
        std::printf("  %-11s rate $%.4f/hr, violations %.1f%%, "
                    "reconfigs %u\n",
                    r.policy.c_str(), r.stats.cost / hours,
                    r.stats.violationPct(), r.stats.reconfigs);
    }
    std::printf("\npaper reference: CASH tracks phases and "
                "releases the expensive phase-3 configuration; "
                "convex stays stuck in it until ~144 Mcycles.\n");
    return 0;
}
