#!/bin/sh
# Performance trajectory: measure the two throughput numbers that
# gate the repo's usefulness — simulated instructions per host
# second (bench_sim_speed, google-benchmark JSON) and service
# responses per host second (bench_service stderr) — and compare
# them against the committed baselines at the repo root:
#
#   BENCH_sim_speed.json   one entry per (slices x banks) point
#   BENCH_service.json     one entry per (sessions x pacing x shards)
#
# The comparison is SOFT by default: host variance between CI
# runners dwarfs real regressions, so a drop only warns. Set
# CASH_PERF_STRICT=1 to turn warnings into failures (for controlled
# hosts). Run with --update to rewrite the baselines from this run
# (commit the result to move the trajectory).
#
#   tools/perf_trajectory.sh <build-dir> [--update]
set -eu

BUILD=${1:?usage: perf_trajectory.sh <build-dir> [--update]}
UPDATE=${2:-}
ROOT=$(cd "$(dirname "$0")/.." && pwd)
DIR=$(mktemp -d)
trap 'rm -rf "$DIR"' EXIT

# --- Measure ----------------------------------------------------

"$BUILD/bench/bench_sim_speed" \
    --benchmark_out="$DIR/sim_speed.json" \
    --benchmark_format=json \
    --benchmark_min_time=0.2 > /dev/null 2>&1

CASH_BENCH_FAST=1 "$BUILD/bench/bench_service" \
    > /dev/null 2> "$DIR/service.err"

python3 - "$DIR" <<'EOF'
import json, re, sys
d = sys.argv[1]

# Normalize google-benchmark output to {name: items_per_second}.
raw = json.load(open(f"{d}/sim_speed.json"))
sim = {b["name"]: round(b.get("items_per_second", 0.0), 1)
       for b in raw["benchmarks"]}
json.dump({"unit": "simulated instructions / host second",
           "benchmarks": sim},
          open(f"{d}/BENCH_sim_speed.json", "w"), indent=1)

# bench_service reports host throughput per grid cell on stderr:
#   "service <N> sessions <pacing> x<S> shards: <R> req/s, ..."
cells = {}
pat = re.compile(r"service (\d+) sessions (\S+) x(\d+) shards: "
                 r"(\d+) req/s")
for line in open(f"{d}/service.err"):
    m = pat.search(line)
    if m:
        key = f"{m.group(1)}-sessions/{m.group(2)}/{m.group(3)}-shards"
        cells[key] = int(m.group(4))
json.dump({"unit": "responses / host second", "cells": cells},
          open(f"{d}/BENCH_service.json", "w"), indent=1)
EOF

# --- Compare against the committed baselines (soft) -------------

python3 - "$DIR" "$ROOT" <<'EOF'
import json, os, sys
d, root = sys.argv[1], sys.argv[2]
strict = os.environ.get("CASH_PERF_STRICT") == "1"
# Below this fraction of the baseline counts as a regression.
THRESHOLD = 0.6
regressed = []

def compare(name, new_map, old_map):
    for key, old in old_map.items():
        new = new_map.get(key)
        if new is None:
            regressed.append(f"{name}: '{key}' disappeared")
        elif old > 0 and new < THRESHOLD * old:
            regressed.append(
                f"{name}: '{key}' {new:.0f} vs baseline {old:.0f} "
                f"({100 * new / old:.0f}%)")

for fname, field in (("BENCH_sim_speed.json", "benchmarks"),
                     ("BENCH_service.json", "cells")):
    base = os.path.join(root, fname)
    if not os.path.exists(base):
        print(f"perf_trajectory: no baseline {fname} (first run)")
        continue
    old = json.load(open(base))
    new = json.load(open(os.path.join(d, fname)))
    compare(fname, new[field], old[field])

if regressed:
    for r in regressed:
        print(f"perf_trajectory: REGRESSION {r}")
    if strict:
        sys.exit(1)
    print("perf_trajectory: soft mode, not failing "
          "(set CASH_PERF_STRICT=1 to enforce)")
else:
    print("perf_trajectory: within the trajectory envelope")
EOF

if [ "$UPDATE" = "--update" ]; then
    cp "$DIR/BENCH_sim_speed.json" "$ROOT/BENCH_sim_speed.json"
    cp "$DIR/BENCH_service.json" "$ROOT/BENCH_service.json"
    echo "perf_trajectory: baselines updated at $ROOT"
fi
