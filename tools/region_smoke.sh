#!/bin/sh
# Region smoke test: cash_serviced as a multi-shard region under
# concurrent load with cross-shard migrations — both client-driven
# (loadgen --migrate-prob) and trigger-driven (aggressive rebalance
# thresholds) — then a SIGTERM drain that must exit 0 with ONE
# aggregated, audited bill report on stdout. Fails unless at least
# one migration actually happened. Used as a ctest and by the CI
# region job.
set -eu

SERVICED=$1
LOADGEN=$2
SHARDS=${3:-4}
SESSIONS=${4:-16}
REQUESTS=${5:-48}

DIR=$(mktemp -d)
SOCK="$DIR/cash.sock"
OUT="$DIR/serviced.out"
ERR="$DIR/serviced.err"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

# Aggressive triggers so even a short run plans rebalances:
# fragmentation over 0.5 or a 5% free-Slice imbalance migrates a
# tenant, with a 2-round cooldown per shard. Small rows/quantum keep
# the per-step simulation cost low — this test is about the region
# plumbing, not fabric scale.
"$SERVICED" --unix "$SOCK" --shards "$SHARDS" --io-threads 2 \
    --queue-cap 512 --rows 4 --quantum 100000 \
    --migrate-frag 0.5 --migrate-imbalance 0.05 \
    --migrate-cooldown 2 > "$OUT" 2> "$ERR" &
PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "region_smoke: socket never appeared" >&2
        cat "$ERR" >&2
        exit 1
    fi
    sleep 0.05
done

# The op mix includes explicit migrations; every session must get
# every response (dropped=0 is loadgen's exit-0 contract).
"$LOADGEN" --unix "$SOCK" --sessions "$SESSIONS" \
    --requests "$REQUESTS" --migrate-prob 0.10 --step-prob 0.20 \
    --seed 5

kill -TERM "$PID"
if ! wait "$PID"; then
    echo "region_smoke: serviced did not drain cleanly" >&2
    cat "$ERR" >&2
    exit 1
fi
PID=

# The fleet drain report: one JSON object aggregating every shard.
if ! grep -q '"ok":true' "$OUT"; then
    echo "region_smoke: no aggregated drain report on stdout:" >&2
    cat "$OUT" >&2
    exit 1
fi

# At least one cross-shard migration must have completed (the
# daemon's stderr stats line reports the region counters).
MIGRATIONS=$(sed -n 's/.*migrations=\([0-9]*\).*/\1/p' "$ERR" | tail -1)
if [ -z "$MIGRATIONS" ] || [ "$MIGRATIONS" -lt 1 ]; then
    echo "region_smoke: no migrations happened" \
         "(migrations='${MIGRATIONS:-}')" >&2
    cat "$ERR" >&2
    exit 1
fi

echo "region_smoke: OK ($MIGRATIONS migration(s) across $SHARDS shards)"
