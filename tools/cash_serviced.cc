/**
 * @file
 * cash_serviced: the CASH provider as a long-running daemon.
 *
 * Serves one CloudProvider over the length-prefixed JSON protocol
 * (service/protocol.hh) on a Unix-domain socket and/or loopback TCP:
 *
 *   cash_serviced --unix /tmp/cash.sock
 *   cash_serviced --tcp 0            # ephemeral port, printed
 *   cash_serviced --unix s.sock --queue-cap 64 --deadline-ms 200
 *
 * The provider's stochastic arrival stream is off: every tenant
 * enters and leaves through requests, so the provider state is a
 * pure function of the request sequence (see DESIGN.md §10).
 *
 * SIGTERM/SIGINT trigger the graceful drain: stop accepting, apply
 * everything already queued, drain the provider (every tenant
 * departed, billing conservation audited), flush responses, then
 * print the final drain report — one JSON object with the final
 * bills — to stdout and exit 0. --trace/--metrics work as on every
 * other binary (trace/options.hh).
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <string>
#include <unistd.h>

#include "check/invariant.hh"
#include "cloud/provider.hh"
#include "common/log.hh"
#include "service/server.hh"
#include "trace/options.hh"

namespace
{

/** Self-pipe the signal handler writes to; main poll()s on it. */
int g_sigPipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    char c = 's';
    [[maybe_unused]] ssize_t n = ::write(g_sigPipe[1], &c, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cash;

    try {
        trace::TraceOptions topts(argc, argv);

        service::ServerConfig cfg;
        // Invariant builds (the sanitizer CI) audit billing
        // conservation at every applied request and stepped
        // quantum; --audit forces the same in any build.
        cfg.audit = invariantsEnabled;
        cloud::ProviderParams params;
        params.arrivalProb = 0.0; // arrivals only through requests

        auto need = [&argc](int i, const char *flag) {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
        };
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (!std::strcmp(arg, "--unix")) {
                need(i, arg);
                cfg.unixPath = argv[++i];
            } else if (!std::strcmp(arg, "--tcp")) {
                need(i, arg);
                cfg.listenTcp = true;
                cfg.tcpPort = static_cast<std::uint16_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--queue-cap")) {
                need(i, arg);
                cfg.queueCapacity =
                    std::strtoul(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--max-batch")) {
                need(i, arg);
                cfg.maxBatch = std::strtoul(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--max-frame")) {
                need(i, arg);
                cfg.maxFrame = std::strtoul(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--idle-timeout-ms")) {
                need(i, arg);
                cfg.idleTimeoutMs = static_cast<int>(
                    std::strtol(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--deadline-ms")) {
                need(i, arg);
                cfg.requestDeadlineMs = static_cast<int>(
                    std::strtol(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--audit")) {
                cfg.audit = true;
            } else if (!std::strcmp(arg, "--seed")) {
                need(i, arg);
                params.seed =
                    std::strtoull(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--quantum")) {
                need(i, arg);
                params.quantum =
                    std::strtoull(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--coarse")) {
                params.provisioning =
                    cloud::Provisioning::CoarseGrain;
            } else if (!std::strcmp(arg, "--rows")) {
                need(i, arg);
                params.fabric.rows = static_cast<std::uint32_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else {
                fatal("unknown flag '%s' (see --unix, --tcp, "
                      "--queue-cap, --max-batch, --max-frame, "
                      "--idle-timeout-ms, --deadline-ms, --audit, "
                      "--seed, --quantum, --coarse, --rows, "
                      "--trace, --metrics)",
                      arg);
            }
        }
        if (cfg.queueCapacity == 0 || cfg.maxBatch == 0)
            fatal("--queue-cap and --max-batch must be positive");

        if (::pipe(g_sigPipe) != 0)
            fatal("cannot create signal pipe: %s",
                  std::strerror(errno));

        cloud::CloudProvider provider(params);
        service::ServiceServer server(provider, cfg);

        struct sigaction sa{};
        sa.sa_handler = onSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
        ::signal(SIGPIPE, SIG_IGN);

        server.start();
        if (!cfg.unixPath.empty())
            inform("cash_serviced: listening on unix:%s",
                   cfg.unixPath.c_str());
        if (cfg.listenTcp)
            inform("cash_serviced: listening on tcp:127.0.0.1:%u",
                   server.tcpPort());

        // Block until SIGTERM/SIGINT.
        pollfd pfd{g_sigPipe[0], POLLIN, 0};
        while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
        }

        inform("cash_serviced: draining...");
        server.stop();

        const service::ServerStats &st = server.stats();
        inform("cash_serviced: %llu request(s) over %llu "
               "connection(s) in %llu batch(es); queue_full=%llu "
               "deadline_exceeded=%llu protocol_errors=%llu "
               "idle_closed=%llu",
               static_cast<unsigned long long>(st.requests.load()),
               static_cast<unsigned long long>(st.accepted.load()),
               static_cast<unsigned long long>(st.batches.load()),
               static_cast<unsigned long long>(st.queueFull.load()),
               static_cast<unsigned long long>(
                   st.deadlineExceeded.load()),
               static_cast<unsigned long long>(
                   st.protocolErrors.load()),
               static_cast<unsigned long long>(
                   st.idleClosed.load()));

        // The drain report — final bills, audited — is the daemon's
        // one piece of stdout.
        std::printf("%s\n", server.finalReport().dump().c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "cash_serviced: %s\n", e.what());
        return 2;
    }
}
