/**
 * @file
 * cash_serviced: a region of CASH chips as a long-running daemon.
 *
 * Serves one CloudProvider per shard (--shards N; default one, the
 * legacy single-chip daemon) over the length-prefixed JSON protocol
 * (service/protocol.hh) on a Unix-domain socket and/or loopback TCP:
 *
 *   cash_serviced --unix /tmp/cash.sock
 *   cash_serviced --tcp 0            # ephemeral port, printed
 *   cash_serviced --unix s.sock --queue-cap 64 --deadline-ms 200
 *   cash_serviced --unix s.sock --shards 4 --io-threads 2 \
 *       --placement spread --migrate-frag 1.5
 *
 * Each provider's stochastic arrival stream is off: every tenant
 * enters and leaves through requests, so each shard's state is a
 * pure function of its applied request sequence (DESIGN.md §10-11).
 * Arrivals are placed across the shards by the PlacementRouter;
 * tenants migrate between shards on request (op "migrate") or when
 * the --migrate-* triggers fire.
 *
 * SIGTERM/SIGINT trigger the fleet-wide graceful drain: stop
 * accepting, apply everything already queued (migration chains
 * included), drain every shard (every tenant departed, billing
 * conservation audited), flush responses, then print the aggregated
 * region report — one JSON object with every shard's final bills —
 * to stdout and exit 0. --trace/--metrics work as on every other
 * binary (trace/options.hh).
 */

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <poll.h>
#include <string>
#include <unistd.h>

#include "check/invariant.hh"
#include "cloud/provider.hh"
#include "common/log.hh"
#include "service/server.hh"
#include "trace/options.hh"

namespace
{

/** Self-pipe the signal handler writes to; main poll()s on it. */
int g_sigPipe[2] = {-1, -1};

extern "C" void
onSignal(int)
{
    char c = 's';
    [[maybe_unused]] ssize_t n = ::write(g_sigPipe[1], &c, 1);
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace cash;

    try {
        // A daemon's status lines (listen address, drain progress,
        // request/migration counters) are operational output, not
        // debug chatter: force them on regardless of the library
        // default. Scripts grep the stats line from stderr.
        setLogLevel(LogLevel::Info);
        trace::TraceOptions topts(argc, argv);

        service::ServerConfig cfg;
        // Invariant builds (the sanitizer CI) audit billing
        // conservation at every applied request and stepped
        // quantum; --audit forces the same in any build.
        cfg.audit = invariantsEnabled;
        cloud::ProviderParams params;
        params.arrivalProb = 0.0; // arrivals only through requests

        auto need = [&argc](int i, const char *flag) {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
        };
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (!std::strcmp(arg, "--unix")) {
                need(i, arg);
                cfg.unixPath = argv[++i];
            } else if (!std::strcmp(arg, "--tcp")) {
                need(i, arg);
                cfg.listenTcp = true;
                cfg.tcpPort = static_cast<std::uint16_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--queue-cap")) {
                need(i, arg);
                cfg.queueCapacity =
                    std::strtoul(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--max-batch")) {
                need(i, arg);
                cfg.maxBatch = std::strtoul(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--max-frame")) {
                need(i, arg);
                cfg.maxFrame = std::strtoul(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--idle-timeout-ms")) {
                need(i, arg);
                cfg.idleTimeoutMs = static_cast<int>(
                    std::strtol(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--deadline-ms")) {
                need(i, arg);
                cfg.requestDeadlineMs = static_cast<int>(
                    std::strtol(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--audit")) {
                cfg.audit = true;
            } else if (!std::strcmp(arg, "--seed")) {
                need(i, arg);
                params.seed =
                    std::strtoull(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--quantum")) {
                need(i, arg);
                params.quantum =
                    std::strtoull(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--coarse")) {
                params.provisioning =
                    cloud::Provisioning::CoarseGrain;
            } else if (!std::strcmp(arg, "--sampled")) {
                // Sampled simulation (sim/sampler.hh): steady
                // phases fast-forward; final bills are flagged
                // "estimated" in the drain report.
                params.simMode = SimMode::Sampled;
            } else if (!std::strcmp(arg, "--rows")) {
                need(i, arg);
                params.fabric.rows = static_cast<std::uint32_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--shards")) {
                need(i, arg);
                cfg.shards = static_cast<std::uint32_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--io-threads")) {
                need(i, arg);
                cfg.ioThreads = static_cast<std::uint32_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--placement")) {
                need(i, arg);
                auto p =
                    cloud::placementPolicyFromName(argv[++i]);
                if (!p)
                    fatal("--placement must be binpack or spread, "
                          "got '%s'",
                          argv[i]);
                cfg.placement = *p;
            } else if (!std::strcmp(arg, "--migrate-frag")) {
                need(i, arg);
                cfg.rebalance.fragThreshold =
                    std::strtod(argv[++i], nullptr);
            } else if (!std::strcmp(arg,
                                    "--migrate-imbalance")) {
                need(i, arg);
                cfg.rebalance.imbalanceThreshold =
                    std::strtod(argv[++i], nullptr);
            } else if (!std::strcmp(arg, "--migrate-cooldown")) {
                need(i, arg);
                cfg.rebalance.cooldownRounds =
                    std::strtoull(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--no-rebalance")) {
                cfg.rebalance.enabled = false;
            } else {
                fatal("unknown flag '%s' (see --unix, --tcp, "
                      "--queue-cap, --max-batch, --max-frame, "
                      "--idle-timeout-ms, --deadline-ms, --audit, "
                      "--seed, --quantum, --coarse, --sampled, "
                      "--rows, --shards, --io-threads, --placement, "
                      "--migrate-frag, --migrate-imbalance, "
                      "--migrate-cooldown, --no-rebalance, "
                      "--trace, --metrics)",
                      arg);
            }
        }
        if (cfg.queueCapacity == 0 || cfg.maxBatch == 0)
            fatal("--queue-cap and --max-batch must be positive");

        if (::pipe(g_sigPipe) != 0)
            fatal("cannot create signal pipe: %s",
                  std::strerror(errno));

        service::ServiceServer server(params, cfg);

        struct sigaction sa{};
        sa.sa_handler = onSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);
        ::signal(SIGPIPE, SIG_IGN);

        server.start();
        if (!cfg.unixPath.empty())
            inform("cash_serviced: listening on unix:%s",
                   cfg.unixPath.c_str());
        if (cfg.listenTcp)
            inform("cash_serviced: listening on tcp:127.0.0.1:%u",
                   server.tcpPort());

        // Block until SIGTERM/SIGINT.
        pollfd pfd{g_sigPipe[0], POLLIN, 0};
        while (::poll(&pfd, 1, -1) < 0 && errno == EINTR) {
        }

        inform("cash_serviced: draining...");
        server.stop();

        const service::ServerStats &st = server.stats();
        inform("cash_serviced: %llu request(s) over %llu "
               "connection(s) in %llu batch(es); queue_full=%llu "
               "deadline_exceeded=%llu protocol_errors=%llu "
               "idle_closed=%llu migrations=%llu rebalances=%llu",
               static_cast<unsigned long long>(st.requests.load()),
               static_cast<unsigned long long>(st.accepted.load()),
               static_cast<unsigned long long>(st.batches.load()),
               static_cast<unsigned long long>(st.queueFull.load()),
               static_cast<unsigned long long>(
                   st.deadlineExceeded.load()),
               static_cast<unsigned long long>(
                   st.protocolErrors.load()),
               static_cast<unsigned long long>(
                   st.idleClosed.load()),
               static_cast<unsigned long long>(
                   st.migrations.load()),
               static_cast<unsigned long long>(
                   st.rebalances.load()));

        // The drain report — final bills, audited — is the daemon's
        // one piece of stdout.
        std::printf("%s\n", server.finalReport().dump().c_str());
        return 0;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "cash_serviced: %s\n", e.what());
        return 2;
    }
}
