/**
 * @file
 * cash_loadgen: concurrent load against a cash_serviced daemon.
 *
 *   cash_loadgen --unix /tmp/cash.sock --sessions 64 --requests 200
 *   cash_loadgen --tcp 8423 --rate 500 --window 4 --seed 7
 *
 * Drives N concurrent sessions (service/loadgen.hh): each session
 * has its own connection, a seeded open-loop arrival process, a
 * bounded pipeline window, and a deterministic op mix of arrivals /
 * departures / queries / quantum steps / cross-shard migrations
 * (--migrate-prob, for daemons running --shards > 1). Prints the
 * interleaving-invariant contract line to stdout (sent == received,
 * dropped == 0) and the latency/throughput summary to stderr. With
 * --trace/--metrics, per-request latencies also land in the
 * `loadgen.latency_us` histogram of the metric registry.
 *
 * Exit status: 0 when every session completed and every request got
 * exactly one response; 1 otherwise.
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "common/log.hh"
#include "service/loadgen.hh"
#include "trace/options.hh"

int
main(int argc, char **argv)
{
    using namespace cash;

    try {
        // The latency/throughput summary goes to stderr via
        // inform(); raise the default Warn level so it shows.
        setLogLevel(LogLevel::Info);
        trace::TraceOptions topts(argc, argv);

        service::LoadConfig cfg;
        cfg.sessions = 8;
        cfg.requests = 64;
        cfg.classes = 11; // the default provider catalog

        auto need = [&argc](int i, const char *flag) {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
        };
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (!std::strcmp(arg, "--unix")) {
                need(i, arg);
                cfg.unixPath = argv[++i];
            } else if (!std::strcmp(arg, "--tcp")) {
                need(i, arg);
                cfg.tcpPort = static_cast<std::uint16_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--host")) {
                need(i, arg);
                cfg.tcpHost = argv[++i];
            } else if (!std::strcmp(arg, "--sessions")) {
                need(i, arg);
                cfg.sessions = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--requests")) {
                need(i, arg);
                cfg.requests = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--rate")) {
                need(i, arg);
                cfg.rate = std::strtod(argv[++i], nullptr);
            } else if (!std::strcmp(arg, "--window")) {
                need(i, arg);
                cfg.window = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--seed")) {
                need(i, arg);
                cfg.seed = std::strtoull(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--classes")) {
                need(i, arg);
                cfg.classes = static_cast<unsigned>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--depart-prob")) {
                need(i, arg);
                cfg.departProb = std::strtod(argv[++i], nullptr);
            } else if (!std::strcmp(arg, "--query-prob")) {
                need(i, arg);
                cfg.queryProb = std::strtod(argv[++i], nullptr);
            } else if (!std::strcmp(arg, "--step-prob")) {
                need(i, arg);
                cfg.stepProb = std::strtod(argv[++i], nullptr);
            } else if (!std::strcmp(arg, "--migrate-prob")) {
                need(i, arg);
                cfg.migrateProb = std::strtod(argv[++i], nullptr);
            } else if (!std::strcmp(arg, "--step-quanta")) {
                need(i, arg);
                cfg.stepQuanta = static_cast<std::uint32_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--residence-max")) {
                need(i, arg);
                cfg.residenceMax = static_cast<std::uint32_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else {
                fatal("unknown flag '%s' (see --unix, --tcp, "
                      "--host, --sessions, --requests, --rate, "
                      "--window, --seed, --classes, --depart-prob, "
                      "--query-prob, --step-prob, --migrate-prob, "
                      "--step-quanta, --residence-max, --trace, "
                      "--metrics)",
                      arg);
            }
        }
        if (cfg.unixPath.empty() && cfg.tcpPort == 0)
            fatal("need a target: --unix <path> or --tcp <port>");
        if (cfg.sessions == 0 || cfg.requests == 0)
            fatal("--sessions and --requests must be positive");

        service::LoadReport rep = service::runLoad(cfg);

        // The contract line: interleaving-invariant counts only.
        std::printf("loadgen: sessions=%u requests_per_session=%u "
                    "sent=%llu received=%llu ok=%llu "
                    "queue_full=%llu errors=%llu dropped=%llu "
                    "failed_sessions=%u\n",
                    cfg.sessions, cfg.requests,
                    static_cast<unsigned long long>(rep.sent),
                    static_cast<unsigned long long>(rep.received),
                    static_cast<unsigned long long>(rep.oks),
                    static_cast<unsigned long long>(rep.queueFull),
                    static_cast<unsigned long long>(
                        rep.otherErrors),
                    static_cast<unsigned long long>(rep.dropped()),
                    rep.failedSessions);
        // One aggregated op-mix line for the whole run (the drawn
        // mix, not the configured probabilities).
        std::printf("loadgen ops: arrive=%llu depart=%llu "
                    "query=%llu step=%llu migrate=%llu\n",
                    static_cast<unsigned long long>(rep.arrives),
                    static_cast<unsigned long long>(rep.departs),
                    static_cast<unsigned long long>(rep.queries),
                    static_cast<unsigned long long>(rep.steps),
                    static_cast<unsigned long long>(rep.migrates));
        // Timing is host-dependent: stderr only.
        inform("loadgen: %.2f s wall, %.0f req/s; latency us "
               "p50=%.0f p90=%.0f max=%.0f mean=%.0f (%llu "
               "samples)",
               rep.elapsedSec,
               rep.elapsedSec > 0.0
                   ? static_cast<double>(rep.received)
                       / rep.elapsedSec
                   : 0.0,
               rep.latP50Us, rep.latP90Us, rep.latMaxUs,
               rep.latMeanUs,
               static_cast<unsigned long long>(rep.latCount));

        return (rep.dropped() == 0 && rep.failedSessions == 0) ? 0
                                                               : 1;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "cash_loadgen: %s\n", e.what());
        return 2;
    }
}
