/**
 * @file
 * Deterministic reconfiguration fuzzer.
 *
 * Replays seed-derived sequences of multi-tenant fabric operations —
 * allocate / resize / release / compact at the allocator layer,
 * create / EXPAND-SHRINK / trace-execution / destroy at the chip
 * layer, tenant arrive / depart / provider-step at the cloud layer,
 * wire-format frames (valid requests, malformed JSON, empty and
 * oversized frames) through the service decode→apply path, and
 * region ops (placement-routed arrivals, cross-shard migrations,
 * aggregated drains) through a two-shard RegionCore — and
 * audits the structural invariants (check/audit.hh) after every
 * single operation. Builds compiled with -DCASH_CHECK_INVARIANTS=ON
 * additionally run every CASH_INVARIANT hook inside the hot layers.
 *
 * Every sequence is a pure function of its seed, and every op list
 * is replayable as a subsequence (ops whose target slot is in the
 * wrong state are skipped), so a failing seed is shrunk to a minimal
 * op-list reproducer by iterated single-op deletion.
 *
 *   fuzz_reconfig --seeds 1000              # fuzz seeds 0..999
 *   fuzz_reconfig --seed 1234 --verbose     # replay one seed
 *   fuzz_reconfig --seeds 32 --mode cloud   # cloud layer only
 *   fuzz_reconfig --seeds 32 --mode service # wire decode→apply only
 *   fuzz_reconfig --seeds 32 --mode region  # two-shard region ops
 *   fuzz_reconfig --seeds 64 --inject alloc-leak   # mutation test:
 *       the named deliberate bug must be caught and shrunk
 *       (requires a CASH_CHECK_INVARIANTS build)
 *   fuzz_reconfig --seed 7 --trace out.json # Chrome-trace timeline
 *       of the replay (open in ui.perfetto.dev); --metrics out.csv
 *       writes the aggregate counters
 */

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "check/audit.hh"
#include "check/invariant.hh"
#include "cloud/provider.hh"
#include "common/log.hh"
#include "common/rng.hh"
#include "service/core.hh"
#include "service/region.hh"
#include "service/protocol.hh"
#include "sim/ssim.hh"
#include "trace/options.hh"
#include "workload/trace_gen.hh"

namespace cash
{
namespace
{

constexpr std::size_t kSlots = 4;

enum class OpKind : std::uint8_t
{
    // Allocator-layer ops.
    Alloc,
    Resize,
    Release,
    Compact,
    // Chip-layer ops.
    Create,
    Command,
    Run,
    Sample,
    Destroy,
    // Cloud-layer ops (CloudProvider).
    CloudArrive,
    CloudDepart,
    CloudStep,
    CloudSetFreq, ///< SET_FREQ on a live tenant's vcore via the gate
    // Service-layer ops: wire frames through decode→apply.
    SvcArrive,
    SvcDepart,
    SvcQuery,
    SvcStep,
    SvcSnapshot,
    SvcDrain,
    SvcJunk,     ///< intact frame, undecodable JSON payload
    SvcBadOp,    ///< well-formed JSON, unknown op name
    SvcEmpty,    ///< zero-length frame (poisons the decoder)
    SvcOversize, ///< frame above the decoder's max (poisons too)
    // Region-layer ops (RegionCore, two shards).
    RgnArrive,
    RgnDepart,
    RgnQuery,
    RgnStep,
    RgnMigrate,
    RgnSnapshot, ///< region_snapshot or shards, by op.a parity
    RgnEnergy,   ///< region_energy: summed per-shard joule ledgers
    RgnDrain,
};

struct Op
{
    OpKind kind;
    std::uint32_t slot = 0;
    std::uint32_t a = 0; ///< slices, or run cycles (x1000)
    std::uint32_t b = 0; ///< banks

    std::string
    str() const
    {
        switch (kind) {
          case OpKind::Alloc:
            return strfmt("alloc   slot=%u slices=%u banks=%u", slot,
                          a, b);
          case OpKind::Resize:
            return strfmt("resize  slot=%u slices=%u banks=%u", slot,
                          a, b);
          case OpKind::Release:
            return strfmt("release slot=%u", slot);
          case OpKind::Compact:
            return "compact";
          case OpKind::Create:
            return strfmt("create  slot=%u slices=%u banks=%u", slot,
                          a, b);
          case OpKind::Command:
            return strfmt("command slot=%u slices=%u banks=%u", slot,
                          a, b);
          case OpKind::Run:
            return strfmt("run     slot=%u kcycles=%u", slot, a);
          case OpKind::Sample:
            return strfmt("sample  slot=%u", slot);
          case OpKind::Destroy:
            return strfmt("destroy slot=%u", slot);
          case OpKind::CloudArrive:
            return strfmt("arrive  slot=%u class=%u residence=%u",
                          slot, a, b);
          case OpKind::CloudDepart:
            return strfmt("depart  slot=%u", slot);
          case OpKind::CloudStep:
            return "step";
          case OpKind::CloudSetFreq:
            return strfmt("setfreq slot=%u pstate=%u", slot,
                          a % kNumPStates);
          case OpKind::SvcArrive:
            return strfmt("svc-arrive   slot=%u class=%u "
                          "residence=%u", slot, a, b);
          case OpKind::SvcDepart:
            return strfmt("svc-depart   slot=%u", slot);
          case OpKind::SvcQuery:
            return strfmt("svc-query    slot=%u", slot);
          case OpKind::SvcStep:
            return strfmt("svc-step     quanta=%u", 1 + a % 4);
          case OpKind::SvcSnapshot:
            return "svc-snapshot";
          case OpKind::SvcDrain:
            return "svc-drain";
          case OpKind::SvcJunk:
            return "svc-junk";
          case OpKind::SvcBadOp:
            return "svc-bad-op";
          case OpKind::SvcEmpty:
            return "svc-empty-frame";
          case OpKind::SvcOversize:
            return "svc-oversize-frame";
          case OpKind::RgnArrive:
            return strfmt("rgn-arrive   slot=%u class=%u "
                          "residence=%u", slot, a, b);
          case OpKind::RgnDepart:
            return strfmt("rgn-depart   slot=%u", slot);
          case OpKind::RgnQuery:
            return strfmt("rgn-query    slot=%u", slot);
          case OpKind::RgnStep:
            return strfmt("rgn-step     quanta=%u", 1 + a % 4);
          case OpKind::RgnMigrate:
            return strfmt("rgn-migrate  slot=%u", slot);
          case OpKind::RgnSnapshot:
            return a % 2 ? "rgn-region-snapshot" : "rgn-shards";
          case OpKind::RgnEnergy:
            return "rgn-region-energy";
          case OpKind::RgnDrain:
            return "rgn-drain";
        }
        return "?";
    }
};

/** The failure a replay ended in. */
struct Failure
{
    std::size_t opIndex = 0;
    std::string message;
};

// ---------------------------------------------------------------
// Sequence generation: a pure function of (seed, mode, op count).
// ---------------------------------------------------------------

std::vector<Op>
genAllocOps(std::uint64_t seed, std::uint32_t count)
{
    Rng rng(seed * 2 + 0);
    std::vector<Op> ops;
    ops.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Op op;
        std::uint64_t pick = rng.nextBounded(10);
        if (pick < 4)
            op.kind = OpKind::Alloc;
        else if (pick < 7)
            op.kind = OpKind::Resize;
        else if (pick < 9)
            op.kind = OpKind::Release;
        else
            op.kind = OpKind::Compact;
        op.slot = static_cast<std::uint32_t>(rng.nextBounded(kSlots));
        op.a = 1 + static_cast<std::uint32_t>(rng.nextBounded(8));
        op.b = static_cast<std::uint32_t>(rng.nextBounded(17));
        ops.push_back(op);
    }
    return ops;
}

std::vector<Op>
genSimOps(std::uint64_t seed, std::uint32_t count)
{
    Rng rng(seed * 2 + 1);
    std::vector<Op> ops;
    ops.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Op op;
        std::uint64_t pick = rng.nextBounded(12);
        if (pick < 3)
            op.kind = OpKind::Create;
        else if (pick < 6)
            op.kind = OpKind::Command;
        else if (pick < 9)
            op.kind = OpKind::Run;
        else if (pick < 10)
            op.kind = OpKind::Sample;
        else
            op.kind = OpKind::Destroy;
        op.slot = static_cast<std::uint32_t>(rng.nextBounded(kSlots));
        op.a = 1 + static_cast<std::uint32_t>(rng.nextBounded(8));
        op.b = static_cast<std::uint32_t>(rng.nextBounded(17));
        if (op.kind == OpKind::Run)
            op.a = 2 + static_cast<std::uint32_t>(rng.nextBounded(16));
        ops.push_back(op);
    }
    return ops;
}

std::vector<Op>
genCloudOps(std::uint64_t seed, std::uint32_t count)
{
    Rng rng(seed * 3 + 2);
    std::vector<Op> ops;
    ops.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Op op;
        std::uint64_t pick = rng.nextBounded(12);
        if (pick < 4)
            op.kind = OpKind::CloudArrive;
        else if (pick < 7)
            op.kind = OpKind::CloudStep;
        else if (pick < 10)
            op.kind = OpKind::CloudDepart;
        else
            op.kind = OpKind::CloudSetFreq;
        op.slot = static_cast<std::uint32_t>(rng.nextBounded(kSlots));
        op.a = static_cast<std::uint32_t>(rng.nextBounded(16));
        op.b = 1 + static_cast<std::uint32_t>(rng.nextBounded(12));
        ops.push_back(op);
    }
    return ops;
}

std::vector<Op>
genServiceOps(std::uint64_t seed, std::uint32_t count)
{
    Rng rng(seed * 5 + 3);
    std::vector<Op> ops;
    ops.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Op op;
        std::uint64_t pick = rng.nextBounded(20);
        if (pick < 6)
            op.kind = OpKind::SvcArrive;
        else if (pick < 9)
            op.kind = OpKind::SvcDepart;
        else if (pick < 11)
            op.kind = OpKind::SvcQuery;
        else if (pick < 15)
            op.kind = OpKind::SvcStep;
        else if (pick < 16)
            op.kind = OpKind::SvcSnapshot;
        else if (pick < 17)
            op.kind = OpKind::SvcJunk;
        else if (pick < 18)
            op.kind = OpKind::SvcBadOp;
        else if (pick < 19)
            op.kind = OpKind::SvcEmpty;
        else
            op.kind = OpKind::SvcOversize;
        // One drain per sequence at most, near the end: after a
        // drain every arrive is (correctly) refused, so an early
        // drain would starve the rest of the sequence.
        if (pick == 14 && i + 4 > count)
            op.kind = OpKind::SvcDrain;
        op.slot = static_cast<std::uint32_t>(rng.nextBounded(kSlots));
        op.a = static_cast<std::uint32_t>(rng.nextBounded(16));
        op.b = 1 + static_cast<std::uint32_t>(rng.nextBounded(12));
        ops.push_back(op);
    }
    return ops;
}

std::vector<Op>
genRegionOps(std::uint64_t seed, std::uint32_t count)
{
    Rng rng(seed * 7 + 5);
    std::vector<Op> ops;
    ops.reserve(count);
    for (std::uint32_t i = 0; i < count; ++i) {
        Op op;
        std::uint64_t pick = rng.nextBounded(22);
        if (pick < 6)
            op.kind = OpKind::RgnArrive;
        else if (pick < 9)
            op.kind = OpKind::RgnDepart;
        else if (pick < 11)
            op.kind = OpKind::RgnQuery;
        else if (pick < 15)
            op.kind = OpKind::RgnStep;
        else if (pick < 18)
            op.kind = OpKind::RgnMigrate;
        else if (pick < 20)
            op.kind = OpKind::RgnSnapshot;
        else
            op.kind = OpKind::RgnEnergy;
        // At most one drain per sequence, near the end (arrivals
        // after a drain are correctly refused — see genServiceOps).
        if (pick == 14 && i + 4 > count)
            op.kind = OpKind::RgnDrain;
        op.slot = static_cast<std::uint32_t>(rng.nextBounded(kSlots));
        op.a = static_cast<std::uint32_t>(rng.nextBounded(16));
        op.b = 1 + static_cast<std::uint32_t>(rng.nextBounded(12));
        ops.push_back(op);
    }
    return ops;
}

// ---------------------------------------------------------------
// Replay. Ops whose slot is in the wrong state are no-ops, so any
// subsequence of a valid sequence is itself valid — the property
// the shrinker depends on.
// ---------------------------------------------------------------

std::optional<Failure>
replayAlloc(const std::vector<Op> &ops)
{
    FabricGrid grid;
    FabricAllocator alloc(grid);
    std::vector<std::optional<VCoreId>> slots(kSlots);

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op &op = ops[i];
        try {
            switch (op.kind) {
              case OpKind::Alloc: {
                if (slots[op.slot])
                    break;
                auto a = alloc.allocate(op.a, op.b);
                if (a)
                    slots[op.slot] = a->id;
                break;
              }
              case OpKind::Resize:
                if (slots[op.slot])
                    alloc.resize(*slots[op.slot], op.a, op.b);
                break;
              case OpKind::Release:
                if (slots[op.slot]) {
                    alloc.release(*slots[op.slot]);
                    slots[op.slot].reset();
                }
                break;
              case OpKind::Compact:
                alloc.compact();
                break;
              default:
                break;
            }
            auditAllocator(alloc);
        } catch (const InvariantError &e) {
            return Failure{i, e.what()};
        } catch (const FatalError &e) {
            return Failure{i, strfmt("unexpected FatalError: %s",
                                     e.what())};
        }
    }
    return std::nullopt;
}

/** One simulated tenant: a vcore driven by a looping phased trace. */
struct Tenant
{
    VCoreId id = invalidVCore;
    std::unique_ptr<PhasedTraceSource> source;
};

std::unique_ptr<PhasedTraceSource>
makeTenantSource(std::uint64_t seed, std::uint32_t slot)
{
    // Store-heavy, cache-straining mixes so reconfigurations find
    // dirty lines to flush and live registers to push.
    PhaseParams phase;
    phase.name = strfmt("fuzz-%u", slot);
    phase.memFrac = 0.35;
    phase.storeFrac = 0.45;
    phase.workingSet = (64 + 64 * ((seed + slot) % 8)) * kiB;
    phase.lengthInsts = 20'000;
    phase.dataBase = slot * 64 * miB;
    return std::make_unique<PhasedTraceSource>(
        std::vector<PhaseParams>{phase}, seed ^ (0x5151u + slot),
        /*loop=*/true);
}

/** --sampled: replay every op family under sampled simulation
 *  (sim/sampler.hh). The audits must hold exactly as in full mode;
 *  a divergence shrinks with the usual single-op-deletion
 *  contract. Short sampling quanta keep the 50k-cycle fuzz rounds
 *  actually exercising the fast-forward path. */
bool g_sampled = false;

SamplerParams
fuzzSamplerParams()
{
    SamplerParams sp;
    sp.sliceQuantum = 2'000;
    return sp;
}

std::optional<Failure>
replaySim(const std::vector<Op> &ops, std::uint64_t seed)
{
    SSim sim;
    if (g_sampled)
        sim.setSampling(SimMode::Sampled, fuzzSamplerParams());
    std::vector<Tenant> slots(kSlots);

    auto live = [&slots]() {
        std::vector<VCoreId> ids;
        for (const Tenant &t : slots)
            if (t.id != invalidVCore)
                ids.push_back(t.id);
        return ids;
    };

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op &op = ops[i];
        Tenant &t = slots[op.slot];
        try {
            switch (op.kind) {
              case OpKind::Create: {
                if (t.id != invalidVCore)
                    break;
                auto id = sim.createVCore(op.a, op.b);
                if (id) {
                    t.id = *id;
                    t.source = makeTenantSource(seed, op.slot);
                    sim.vcore(t.id).bindSource(t.source.get());
                }
                break;
              }
              case OpKind::Command:
                if (t.id != invalidVCore)
                    sim.command(t.id, op.a, op.b);
                break;
              case OpKind::Run:
                if (t.id != invalidVCore) {
                    VirtualCore &vc = sim.vcore(t.id);
                    vc.runUntil(vc.now() + op.a * 1000ull);
                }
                break;
              case OpKind::Sample:
                if (t.id != invalidVCore)
                    sim.readCounters(t.id);
                break;
              case OpKind::Destroy:
                if (t.id != invalidVCore) {
                    sim.destroyVCore(t.id);
                    t.id = invalidVCore;
                    t.source.reset();
                }
                break;
              default:
                break;
            }
            auditSim(sim, live());
        } catch (const InvariantError &e) {
            return Failure{i, e.what()};
        } catch (const FatalError &e) {
            return Failure{i, strfmt("unexpected FatalError: %s",
                                     e.what())};
        }
    }
    return std::nullopt;
}

/**
 * Cloud-layer replay: a FineGrain CloudProvider on a tight chip,
 * with every arrival and departure injected through the provider's
 * deterministic hooks (the stochastic arrival stream is disabled)
 * so each op is a pure function of its fields. auditProvider checks
 * tile conservation, lifecycle algebra, billing-vs-holdings, and
 * arbitration after every op.
 */
std::optional<Failure>
replayCloud(const std::vector<Op> &ops, std::uint64_t seed)
{
    cloud::ProviderParams params;
    params.fabric.sliceCols = 1;
    params.fabric.bankCols = 4;
    params.fabric.rows = 8; // 8 Slices (7 sellable), 32 banks
    params.provisioning = cloud::Provisioning::FineGrain;
    params.arrivalProb = 0.0; // arrivals only through the ops
    params.quantum = 50'000;  // short rounds keep replays cheap
    params.seed = seed;
    // Joint (tiles x frequency) runtimes: every CloudStep can issue
    // SET_FREQ through the command gate, so the energy audit sees
    // voltage-scaled accrual interleaved with reconfiguration.
    params.runtime.dvfs = true;
    if (g_sampled) {
        params.simMode = SimMode::Sampled;
        params.sampler = fuzzSamplerParams();
    }
    cloud::CloudProvider provider(params);
    std::size_t num_classes = provider.params().catalog.size();

    std::vector<std::optional<cloud::TenantId>> slots(kSlots);
    auto slot_live = [&](std::uint32_t s) {
        if (!slots[s])
            return false;
        cloud::TenantState st = provider.tenants()[*slots[s]]->state;
        return st == cloud::TenantState::Active
            || st == cloud::TenantState::Queued;
    };

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op &op = ops[i];
        try {
            switch (op.kind) {
              case OpKind::CloudArrive: {
                if (slot_live(op.slot))
                    break;
                cloud::TenantId id = provider.injectArrival(
                    op.a % num_classes, op.b);
                cloud::TenantState st =
                    provider.tenants()[id]->state;
                if (st == cloud::TenantState::Active
                    || st == cloud::TenantState::Queued)
                    slots[op.slot] = id;
                else
                    slots[op.slot].reset();
                break;
              }
              case OpKind::CloudDepart:
                // The tenant may already have departed on its own
                // during a CloudStep; injectDeparture is then a
                // no-op returning false.
                if (slots[op.slot]) {
                    provider.injectDeparture(*slots[op.slot]);
                    slots[op.slot].reset();
                }
                break;
              case OpKind::CloudStep:
                provider.step();
                break;
              case OpKind::CloudSetFreq:
                // External SET_FREQ on a live tenant's vcore,
                // routed through the provider's command gate like
                // any runtime-issued frequency change.
                if (slots[op.slot])
                    provider.injectSetFreq(*slots[op.slot],
                                           op.a % kNumPStates);
                break;
              default:
                break;
            }
            auditProvider(provider);
        } catch (const InvariantError &e) {
            return Failure{i, e.what()};
        } catch (const FatalError &e) {
            return Failure{i, strfmt("unexpected FatalError: %s",
                                     e.what())};
        }
    }
    return std::nullopt;
}

/**
 * Service-layer replay: the daemon's decode→apply path in-process,
 * no sockets. Each op is rendered to an actual wire frame, fed to a
 * FrameDecoder in two split pieces (exercising incremental
 * reassembly), parsed, and applied through ServiceCore against a
 * FineGrain provider — exactly the server's handleFrame → sim-thread
 * sequence. Malformed payloads, empty frames, and oversized frames
 * must come back as error responses (or sticky decoder errors — we
 * then swap in a fresh decoder, as the server does by closing the
 * connection), never as exceptions; auditProvider runs after every
 * op.
 */
std::optional<Failure>
replayService(const std::vector<Op> &ops, std::uint64_t seed)
{
    cloud::ProviderParams params;
    params.fabric.sliceCols = 1;
    params.fabric.bankCols = 4;
    params.fabric.rows = 8;
    params.provisioning = cloud::Provisioning::FineGrain;
    params.arrivalProb = 0.0;
    params.quantum = 50'000;
    params.seed = seed;
    params.runtime.dvfs = true; // see replayCloud
    if (g_sampled) {
        params.simMode = SimMode::Sampled;
        params.sampler = fuzzSamplerParams();
    }
    cloud::CloudProvider provider(params);
    std::size_t num_classes = provider.params().catalog.size();
    service::ServiceCore core(provider, /*audit_each_quantum=*/false);

    constexpr std::size_t kMaxFrame = 1024;
    service::FrameDecoder decoder(kMaxFrame);
    std::vector<std::optional<cloud::TenantId>> slots(kSlots);
    std::uint64_t next_id = 1;

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op &op = ops[i];
        try {
            // --- Render the op to one wire frame.
            std::string frame;
            bool expect_decoder_error = false;
            bool expect_parse_error = false;
            switch (op.kind) {
              case OpKind::SvcJunk:
                frame = service::encodeFrame("{\"id\":1,\"op\"");
                expect_parse_error = true;
                break;
              case OpKind::SvcBadOp:
                frame = service::encodeFrame(
                    strfmt("{\"id\":%llu,\"op\":\"warp\"}",
                           static_cast<unsigned long long>(
                               next_id++)));
                break;
              case OpKind::SvcEmpty:
                frame = service::encodeFrame("");
                expect_decoder_error = true;
                break;
              case OpKind::SvcOversize:
                frame = service::encodeFrame(
                    std::string(kMaxFrame + 1, ' '));
                expect_decoder_error = true;
                break;
              default: {
                service::Request req;
                req.id = next_id++;
                switch (op.kind) {
                  case OpKind::SvcArrive:
                    req.op = service::Op::Arrive;
                    req.cls = static_cast<std::uint32_t>(
                        op.a % num_classes);
                    req.residence = op.b;
                    break;
                  case OpKind::SvcDepart:
                    if (!slots[op.slot])
                        continue;
                    req.op = service::Op::Depart;
                    req.tenant = *slots[op.slot];
                    slots[op.slot].reset();
                    break;
                  case OpKind::SvcQuery:
                    if (!slots[op.slot])
                        continue;
                    req.op = service::Op::Query;
                    req.tenant = *slots[op.slot];
                    break;
                  case OpKind::SvcStep:
                    req.op = service::Op::Step;
                    req.quanta = 1 + op.a % 4;
                    break;
                  case OpKind::SvcSnapshot:
                    req.op = service::Op::Snapshot;
                    break;
                  case OpKind::SvcDrain:
                    req.op = service::Op::Drain;
                    break;
                  default:
                    continue; // non-service op in a mixed shrink
                }
                frame = service::encodeFrame(req.toJson().dump());
                break;
              }
            }

            // --- Feed it split in two, decode, apply.
            std::size_t cut = op.a % frame.size();
            decoder.feed(frame.data(), cut);
            decoder.feed(frame.data() + cut, frame.size() - cut);
            bool parsed_one = false;
            while (auto payload = decoder.next()) {
                std::string perr;
                auto doc = service::parseJson(*payload, &perr);
                if (!doc) {
                    if (!expect_parse_error)
                        return Failure{
                            i, strfmt("valid request failed to "
                                      "parse: %s", perr.c_str())};
                    continue;
                }
                std::string code, detail;
                std::uint64_t id = 0;
                auto req = service::parseRequest(*doc, &code,
                                                 &detail, &id);
                if (!req) {
                    if (op.kind != OpKind::SvcBadOp)
                        return Failure{
                            i, strfmt("request rejected: %s (%s)",
                                      code.c_str(),
                                      detail.c_str())};
                    continue;
                }
                service::JsonValue resp = core.apply(*req);
                parsed_one = true;
                // Track tenants handed out by ok arrive responses.
                if (req->op == service::Op::Arrive
                    && resp.getBool("ok").value_or(false)
                    && resp.getString("state").value_or("")
                        != "rejected") {
                    if (auto t = resp.getUint("tenant"))
                        slots[op.slot] =
                            static_cast<cloud::TenantId>(*t);
                }
            }
            if (decoder.error()) {
                if (!expect_decoder_error)
                    return Failure{
                        i, strfmt("decoder poisoned by a valid "
                                  "frame: %s", decoder.error())};
                // The server answers and closes; a new connection
                // gets a fresh decoder.
                decoder = service::FrameDecoder(kMaxFrame);
            } else if (expect_decoder_error) {
                return Failure{i, "hostile frame was accepted"};
            } else if (!parsed_one && !expect_parse_error
                       && op.kind != OpKind::SvcBadOp) {
                return Failure{i, "frame produced no response"};
            }
            auditProvider(provider);
        } catch (const InvariantError &e) {
            return Failure{i, e.what()};
        } catch (const FatalError &e) {
            return Failure{i, strfmt("unexpected FatalError: %s",
                                     e.what())};
        }
    }
    return std::nullopt;
}

/**
 * Region-layer replay: a two-shard RegionCore on tight FineGrain
 * chips, driven through the same Request objects the wire would
 * deliver — placement-routed arrivals, region-id departs/queries,
 * cross-shard migrations (serialize → JSON → replay), region
 * snapshots, and the aggregated drain. auditProvider runs on EVERY
 * shard after every op, so a migration that double-bills, leaks a
 * holding, or breaks lifecycle algebra on either side fails the op
 * that caused it.
 */
std::optional<Failure>
replayRegion(const std::vector<Op> &ops, std::uint64_t seed)
{
    cloud::ProviderParams params;
    params.fabric.sliceCols = 1;
    params.fabric.bankCols = 4;
    params.fabric.rows = 8;
    params.provisioning = cloud::Provisioning::FineGrain;
    params.arrivalProb = 0.0;
    params.quantum = 50'000;
    params.seed = seed;
    params.runtime.dvfs = true; // see replayCloud
    if (g_sampled) {
        params.simMode = SimMode::Sampled;
        params.sampler = fuzzSamplerParams();
    }
    constexpr std::uint32_t kShards = 2;
    service::RegionCore region(params, kShards,
                               /*audit_each_quantum=*/false);
    std::size_t num_classes =
        region.provider(0).params().catalog.size();

    // Slots hold REGION tenant ids (shard << 24 | local).
    std::vector<std::optional<std::uint32_t>> slots(kSlots);
    std::uint64_t next_id = 1;

    auto audit_all = [&region] {
        for (std::uint32_t s = 0; s < kShards; ++s)
            auditProvider(region.provider(s));
    };

    for (std::size_t i = 0; i < ops.size(); ++i) {
        const Op &op = ops[i];
        try {
            service::Request req;
            req.id = next_id++;
            switch (op.kind) {
              case OpKind::RgnArrive: {
                if (slots[op.slot])
                    break;
                req.op = service::Op::Arrive;
                req.cls = static_cast<std::uint32_t>(
                    op.a % num_classes);
                req.residence = op.b;
                service::JsonValue resp = region.apply(req);
                if (resp.getBool("ok").value_or(false)
                    && resp.getString("state").value_or("")
                        != "rejected") {
                    if (auto t = resp.getUint("tenant"))
                        slots[op.slot] =
                            static_cast<std::uint32_t>(*t);
                }
                break;
              }
              case OpKind::RgnDepart:
                if (!slots[op.slot])
                    break;
                req.op = service::Op::Depart;
                req.tenant = *slots[op.slot];
                // unknown_tenant is fine: it may have departed on
                // its own during an RgnStep.
                region.apply(req);
                slots[op.slot].reset();
                break;
              case OpKind::RgnQuery:
                if (!slots[op.slot])
                    break;
                req.op = service::Op::Query;
                req.tenant = *slots[op.slot];
                region.apply(req);
                break;
              case OpKind::RgnStep:
                req.op = service::Op::Step;
                req.quanta = 1 + op.a % 4;
                region.apply(req);
                break;
              case OpKind::RgnMigrate: {
                if (!slots[op.slot])
                    break;
                req.op = service::Op::Migrate;
                req.tenant = *slots[op.slot];
                // Auto target: the router picks the other shard.
                service::JsonValue resp = region.apply(req);
                if (resp.getBool("ok").value_or(false)) {
                    auto t = resp.getUint("tenant");
                    if (!t)
                        return Failure{i, "ok migrate response "
                                          "without a tenant id"};
                    std::uint32_t new_id =
                        static_cast<std::uint32_t>(*t);
                    if (cloud::tenantShard(new_id)
                        == cloud::tenantShard(*slots[op.slot]))
                        return Failure{
                            i, "migrate landed on the source shard"};
                    slots[op.slot] = new_id;
                }
                break;
              }
              case OpKind::RgnSnapshot:
                req.op = op.a % 2 ? service::Op::RegionSnapshot
                                  : service::Op::Shards;
                region.apply(req);
                break;
              case OpKind::RgnEnergy: {
                req.op = service::Op::RegionEnergy;
                service::JsonValue resp = region.apply(req);
                if (!resp.getBool("ok").value_or(false))
                    return Failure{i, "region_energy answered !ok"};
                break;
              }
              case OpKind::RgnDrain: {
                req.op = service::Op::Drain;
                service::JsonValue resp = region.apply(req);
                if (!resp.getBool("ok").value_or(false))
                    return Failure{i, "drain answered !ok"};
                for (auto &slot : slots)
                    slot.reset();
                break;
              }
              default:
                break; // non-region op in a mixed shrink
            }
            audit_all();
        } catch (const InvariantError &e) {
            return Failure{i, e.what()};
        } catch (const FatalError &e) {
            return Failure{i, strfmt("unexpected FatalError: %s",
                                     e.what())};
        }
    }
    return std::nullopt;
}

// ---------------------------------------------------------------
// Shrinking: iterated single-op deletion to a fixpoint. Sequences
// are small (tens of ops) and replays are cheap, so the quadratic
// loop minimizes properly where chunk-only ddmin can stall early.
// ---------------------------------------------------------------

template <typename Replay>
std::vector<Op>
shrinkOps(std::vector<Op> ops, const Replay &replay)
{
    bool progress = true;
    while (progress && ops.size() > 1) {
        progress = false;
        for (std::size_t i = 0; i < ops.size();) {
            std::vector<Op> candidate = ops;
            candidate.erase(candidate.begin()
                            + static_cast<std::ptrdiff_t>(i));
            if (replay(candidate)) {
                ops = std::move(candidate);
                progress = true;
            } else {
                ++i;
            }
        }
    }
    return ops;
}

struct Options
{
    std::uint64_t firstSeed = 0;
    std::uint64_t numSeeds = 100;
    std::uint32_t opsPerSeed = 48;
    bool modeAlloc = true;
    bool modeSim = true;
    bool modeCloud = true;
    bool modeService = true;
    bool modeRegion = true;
    bool shrink = true;
    bool verbose = false;
    /** Replay every mode under SimMode::Sampled (sim/sampler.hh).
     *  Op generation and shrinking are untouched — only the replay
     *  simulators flip, so a seed reproduces identically with or
     *  without the flag. */
    bool sampled = false;
    Fault inject = Fault::None;
};

void
reportFailure(const char *mode, std::uint64_t seed,
              const Options &opt, const std::vector<Op> &minimized,
              const Failure &f)
{
    std::fprintf(stderr, "FAIL [%s] seed %llu: %s\n", mode,
                 static_cast<unsigned long long>(seed),
                 f.message.c_str());
    std::fprintf(stderr, "  minimized to %zu op(s):\n",
                 minimized.size());
    for (std::size_t i = 0; i < minimized.size(); ++i)
        std::fprintf(stderr, "    [%2zu] %s\n", i,
                     minimized[i].str().c_str());
    int enabled = (opt.modeAlloc ? 1 : 0) + (opt.modeSim ? 1 : 0)
        + (opt.modeCloud ? 1 : 0) + (opt.modeService ? 1 : 0)
        + (opt.modeRegion ? 1 : 0);
    const char *only = "";
    if (enabled == 1) {
        only = opt.modeAlloc ? " --mode alloc"
            : opt.modeSim    ? " --mode sim"
            : opt.modeCloud  ? " --mode cloud"
            : opt.modeService ? " --mode service"
                              : " --mode region";
    }
    std::fprintf(stderr,
                 "  reproduce: fuzz_reconfig --seed %llu --ops %u"
                 "%s%s%s\n",
                 static_cast<unsigned long long>(seed),
                 opt.opsPerSeed, only,
                 opt.inject != Fault::None
                     ? strfmt(" --inject %s",
                              faultName(opt.inject)).c_str()
                     : "",
                 opt.sampled ? " --sampled" : "");
}

int
run(const Options &opt)
{
    if (opt.inject != Fault::None && !invariantsEnabled) {
        warn("--inject %s has no effect: this binary was built "
             "without CASH_CHECK_INVARIANTS, so the fault points "
             "are compiled out", faultName(opt.inject));
    }
    setInjectedFault(opt.inject);
    g_sampled = opt.sampled;

    std::uint64_t failures = 0;
    for (std::uint64_t seed = opt.firstSeed;
         seed < opt.firstSeed + opt.numSeeds; ++seed) {
        if (opt.verbose)
            std::fprintf(stderr, "seed %llu...\n",
                         static_cast<unsigned long long>(seed));

        if (opt.modeAlloc) {
            std::vector<Op> ops = genAllocOps(seed, opt.opsPerSeed);
            if (auto f = replayAlloc(ops)) {
                ++failures;
                std::vector<Op> min = opt.shrink
                    ? shrinkOps(ops,
                                [](const std::vector<Op> &c) {
                                    return replayAlloc(c)
                                        .has_value();
                                })
                    : ops;
                Failure mf = replayAlloc(min).value_or(*f);
                reportFailure("alloc", seed, opt, min, mf);
            }
        }
        if (opt.modeSim) {
            std::vector<Op> ops = genSimOps(seed, opt.opsPerSeed);
            if (auto f = replaySim(ops, seed)) {
                ++failures;
                std::vector<Op> min = opt.shrink
                    ? shrinkOps(ops,
                                [seed](const std::vector<Op> &c) {
                                    return replaySim(c, seed)
                                        .has_value();
                                })
                    : ops;
                Failure mf = replaySim(min, seed).value_or(*f);
                reportFailure("sim", seed, opt, min, mf);
            }
        }
        if (opt.modeCloud) {
            std::vector<Op> ops = genCloudOps(seed, opt.opsPerSeed);
            if (auto f = replayCloud(ops, seed)) {
                ++failures;
                std::vector<Op> min = opt.shrink
                    ? shrinkOps(ops,
                                [seed](const std::vector<Op> &c) {
                                    return replayCloud(c, seed)
                                        .has_value();
                                })
                    : ops;
                Failure mf = replayCloud(min, seed).value_or(*f);
                reportFailure("cloud", seed, opt, min, mf);
            }
        }
        if (opt.modeService) {
            std::vector<Op> ops =
                genServiceOps(seed, opt.opsPerSeed);
            if (auto f = replayService(ops, seed)) {
                ++failures;
                std::vector<Op> min = opt.shrink
                    ? shrinkOps(ops,
                                [seed](const std::vector<Op> &c) {
                                    return replayService(c, seed)
                                        .has_value();
                                })
                    : ops;
                Failure mf = replayService(min, seed).value_or(*f);
                reportFailure("service", seed, opt, min, mf);
            }
        }
        if (opt.modeRegion) {
            std::vector<Op> ops =
                genRegionOps(seed, opt.opsPerSeed);
            if (auto f = replayRegion(ops, seed)) {
                ++failures;
                std::vector<Op> min = opt.shrink
                    ? shrinkOps(ops,
                                [seed](const std::vector<Op> &c) {
                                    return replayRegion(c, seed)
                                        .has_value();
                                })
                    : ops;
                Failure mf = replayRegion(min, seed).value_or(*f);
                reportFailure("region", seed, opt, min, mf);
            }
        }
    }

    std::printf("fuzz_reconfig: %llu seed(s) x%s%s%s%s%s, %u ops "
                "each, invariants %s, inject=%s: %llu failure(s)\n",
                static_cast<unsigned long long>(opt.numSeeds),
                opt.modeAlloc ? " alloc" : "",
                opt.modeSim ? " sim" : "",
                opt.modeCloud ? " cloud" : "",
                opt.modeService ? " service" : "",
                opt.modeRegion ? " region" : "", opt.opsPerSeed,
                invariantsEnabled ? "on" : "off",
                faultName(opt.inject),
                static_cast<unsigned long long>(failures));
    return failures == 0 ? 0 : 1;
}

} // namespace
} // namespace cash

int
main(int argc, char **argv)
{
    using namespace cash;

    Options opt;
    try {
        // Owns --trace/--metrics (removed from argv here); writes
        // the exports when main returns.
        trace::TraceOptions topts(argc, argv);
        auto need = [argc](int i, const char *flag) {
            if (i + 1 >= argc)
                fatal("%s needs a value", flag);
        };
        for (int i = 1; i < argc; ++i) {
            const char *arg = argv[i];
            if (!std::strcmp(arg, "--seeds")) {
                need(i, arg);
                opt.numSeeds = std::strtoull(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--seed")) {
                need(i, arg);
                opt.firstSeed =
                    std::strtoull(argv[++i], nullptr, 10);
                opt.numSeeds = 1;
                opt.verbose = true;
            } else if (!std::strcmp(arg, "--start")) {
                need(i, arg);
                opt.firstSeed =
                    std::strtoull(argv[++i], nullptr, 10);
            } else if (!std::strcmp(arg, "--ops")) {
                need(i, arg);
                opt.opsPerSeed = static_cast<std::uint32_t>(
                    std::strtoul(argv[++i], nullptr, 10));
            } else if (!std::strcmp(arg, "--mode")) {
                need(i, arg);
                std::string mode = argv[++i];
                // "both" predates the cloud layer and keeps meaning
                // alloc+sim; "all" is everything.
                opt.modeAlloc = mode == "alloc" || mode == "both"
                    || mode == "all";
                opt.modeSim = mode == "sim" || mode == "both"
                    || mode == "all";
                opt.modeCloud = mode == "cloud" || mode == "all";
                opt.modeService = mode == "service"
                    || mode == "all";
                opt.modeRegion = mode == "region" || mode == "all";
                if (!opt.modeAlloc && !opt.modeSim && !opt.modeCloud
                    && !opt.modeService && !opt.modeRegion)
                    fatal("unknown mode '%s' "
                          "(alloc|sim|cloud|service|region|both|"
                          "all)",
                          mode.c_str());
            } else if (!std::strcmp(arg, "--inject")) {
                need(i, arg);
                opt.inject = faultFromName(argv[++i]);
            } else if (!std::strcmp(arg, "--sampled")) {
                opt.sampled = true;
            } else if (!std::strcmp(arg, "--no-shrink")) {
                opt.shrink = false;
            } else if (!std::strcmp(arg, "--verbose")) {
                opt.verbose = true;
            } else {
                fatal("unknown flag '%s'", arg);
            }
        }
        if (opt.opsPerSeed == 0 || opt.numSeeds == 0)
            fatal("--seeds and --ops must be positive");
        return run(opt);
    } catch (const FatalError &e) {
        std::fprintf(stderr, "fuzz_reconfig: %s\n", e.what());
        return 2;
    }
}
