#!/bin/sh
# Link checker for the repo's markdown documentation.
#
# Verifies, without network access, that
#  1. every relative markdown link target `[text](path)` exists, and
#  2. every backtick-quoted *.md cross-reference (the repo's dominant
#     citation style, e.g. `DESIGN.md` or `docs/TUTORIAL.md`) exists.
# Targets resolve against the repo root or the referencing file's
# directory. External links (http/https/mailto) and pure #anchors are
# skipped. Exits nonzero listing every broken reference.
#
# Run from anywhere: ./tools/check_docs_links.sh
set -u

root=$(cd "$(dirname "$0")/.." && pwd)
cd "$root" || exit 1

files="README.md DESIGN.md EXPERIMENTS.md ROADMAP.md PAPER.md CHANGES.md"
for f in docs/*.md; do
    [ -e "$f" ] && files="$files $f"
done

status=0
checked=0

check_target() {
    # $1 = referencing file, $2 = raw link target
    case "$2" in
        http://* | https://* | mailto:* | '#'*) return 0 ;;
    esac
    target=${2%%#*} # drop any anchor
    [ -n "$target" ] || return 0
    checked=$((checked + 1))
    dir=$(dirname "$1")
    if [ ! -e "$target" ] && [ ! -e "$dir/$target" ]; then
        echo "$1: broken reference -> $2" >&2
        status=1
    fi
}

for f in $files; do
    [ -f "$f" ] || continue

    # Pass 1: markdown inline links [text](target).
    for link in $(grep -o '](\([^)]*\))' "$f" |
        sed 's/^](//; s/)$//' | sort -u); do
        check_target "$f" "$link"
    done

    # Pass 2: backtick-quoted .md references, with or without a
    # trailing section marker inside the backticks.
    for ref in $(grep -o '`[A-Za-z0-9_./-]*\.md`' "$f" |
        sed 's/`//g' | sort -u); do
        check_target "$f" "$ref"
    done
done

if [ "$status" -eq 0 ]; then
    echo "docs links OK ($checked references checked)"
fi
exit "$status"
