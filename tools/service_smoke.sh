#!/bin/sh
# Loopback smoke test for the service stack: start cash_serviced on
# a Unix socket, run cash_loadgen against it (zero dropped
# responses), then SIGTERM the daemon and require a clean drain
# (exit 0, drain report on stdout). Used as a ctest and by the CI
# service job.
set -eu

SERVICED=$1
LOADGEN=$2
SESSIONS=${3:-8}
REQUESTS=${4:-32}

DIR=$(mktemp -d)
SOCK="$DIR/cash.sock"
OUT="$DIR/serviced.out"

cleanup() {
    [ -n "${PID:-}" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$DIR"
}
trap cleanup EXIT

"$SERVICED" --unix "$SOCK" --queue-cap 256 > "$OUT" &
PID=$!

i=0
while [ ! -S "$SOCK" ]; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "service_smoke: socket never appeared" >&2
        exit 1
    fi
    sleep 0.05
done

"$LOADGEN" --unix "$SOCK" --sessions "$SESSIONS" \
    --requests "$REQUESTS" --seed 3

kill -TERM "$PID"
if ! wait "$PID"; then
    echo "service_smoke: serviced did not drain cleanly" >&2
    exit 1
fi
PID=

# The drain report must be one JSON object reporting success.
if ! grep -q '"ok":true' "$OUT"; then
    echo "service_smoke: no drain report on stdout:" >&2
    cat "$OUT" >&2
    exit 1
fi
echo "service_smoke: OK"
