#!/usr/bin/env bash
# Sampling-accuracy gate: run every figure workload full vs sampled
# and fail unless geomean runtime-estimate error <= 3%, per-workload
# error <= 5%, and geomean host-time speedup >= 5x (the bounds live
# in bench/bench_sim_speed.cc; theory in DESIGN.md §12).
#
# Usage: tools/sample_error_gate.sh [build-dir]   (default: build)
#
# CI runs this in the main job; run it locally after touching
# src/sim/sampler.* or the fast-forward path in src/sim/vcore.cc.
set -euo pipefail

BUILD="${1:-build}"
BIN="$BUILD/bench/bench_sim_speed"

if [[ ! -x "$BIN" ]]; then
    echo "sample_error_gate: $BIN not found or not executable" >&2
    echo "  (build first: cmake --build $BUILD -j)" >&2
    exit 2
fi

exec "$BIN" --sampled-error
